package trie

// Incremental maintenance. A built Trie is immutable on its read path
// (lock-free Get/GetByID/Walk), so dataset mutation cannot touch it in
// place while queries are in flight. Instead a Mutation stages a batch of
// dataset changes — appended graphs and swap-removals — against a base trie
// and Apply produces a *new* Trie holding the post-mutation state:
//
//   - shards that received no staged postings share their postings map with
//     the base (one pointer copy);
//   - an affected shard's map is copied once (small value entries), and
//     only the features actually touched are re-allocated: the first edit
//     materialises a feature's container into a flat working slice, later
//     edits mutate that slice in place, and Apply seals every surviving
//     edited feature back into canonical container form — so a batch costs
//     one materialise + one seal per touched feature, and container
//     encodings are re-chosen exactly where a feature crossed a density
//     threshold. Untouched features keep sharing the base's containers;
//   - the byte trie is updated by path copying: inserting or pruning a key
//     clones the O(len(key)) nodes along its path and shares every other
//     subtree with the base.
//
// The base trie is never written, so readers holding it are unaffected;
// installing the new trie is the caller's snapshot swap (the engine's
// mutation discipline). The staged ops double as the on-disk delta journal
// (see journal.go): recording them into a Journal and replaying that
// journal through this same Apply path is what makes a journaled snapshot
// land byte-identically on the live in-memory state.
//
// Feature identity across removals: postings of a drained feature (no
// occurrences left after a removal) are deleted and its byte-trie path is
// pruned, but its dictionary entry cannot be reclaimed — FeatureIDs are
// dense process-local handles and other index generations may still hold
// them. The trie instead tracks such features in a dead set: they are
// excluded from size accounting (LiveDictSizeBytes) and from persisted
// snapshots (WriteTo compacts the dictionary), so observable state always
// matches a from-scratch build over the surviving dataset. A later append
// that re-introduces the feature resurrects it.

import (
	"maps"
	"sort"

	"repro/internal/features"
)

// GraphFeature is one feature occurrence record of a single graph: the
// canonical key, the occurrence count, and (Grapes) the sorted vertex
// locations. Mutations and journals are keyed by canonical strings, not
// FeatureIDs — IDs are process-local, strings are the stable identity.
type GraphFeature struct {
	Key   string
	Count int32
	Locs  []int32
}

// op kinds of a staged mutation / journal entry.
const (
	opAppend byte = 1
	opRemove byte = 2
)

// mutOp is one staged dataset operation.
type mutOp struct {
	kind    byte
	graph   int32          // append: the new graph's id; remove: the vacated position
	swapped int32          // remove: the old id of the graph moved into `graph` (== graph when none)
	feats   []GraphFeature // append: new graph's features; remove: the swapped graph's features
	scrub   []string       // remove: the removed graph's feature keys
}

// Mutation stages a batch of dataset changes against a base trie. Stage ops
// with AppendGraph/RemoveGraph (in dataset-op order), then Apply. A
// Mutation is single-goroutine state; the produced trie is as concurrency-
// safe as any built trie.
type Mutation struct {
	base *Trie
	ops  []mutOp
}

// NewMutation returns an empty mutation staged against t.
func (t *Trie) NewMutation() *Mutation { return &Mutation{base: t} }

// Empty reports whether no ops were staged.
func (m *Mutation) Empty() bool { return len(m.ops) == 0 }

// AppendGraph stages the postings of a newly appended graph: id must not
// hold any posting in the base trie (dataset positions grow monotonically
// within one mutation batch).
func (m *Mutation) AppendGraph(id int32, feats []GraphFeature) {
	m.ops = append(m.ops, mutOp{kind: opAppend, graph: id, feats: feats})
}

// RemoveGraph stages one swap-removal step: the postings of the graph at
// position `removed` (feature keys in scrubKeys) are deleted, and — when
// swappedFrom != removed — the graph previously at position swappedFrom is
// re-homed to position `removed` (its full feature records in swappedFeats;
// its old postings are deleted and re-inserted at the new id).
func (m *Mutation) RemoveGraph(removed, swappedFrom int32, scrubKeys []string, swappedFeats []GraphFeature) {
	m.ops = append(m.ops, mutOp{
		kind:    opRemove,
		graph:   removed,
		swapped: swappedFrom,
		feats:   swappedFeats,
		scrub:   scrubKeys,
	})
}

// RecordTo appends the staged ops to a delta journal (persisted later via
// AppendJournalSection). Ops are shared, not copied — stage, record, Apply,
// then discard the Mutation.
func (m *Mutation) RecordTo(j *Journal) { j.ops = append(j.ops, m.ops...) }

// Apply builds the post-mutation trie. The base is left untouched and keeps
// answering over the pre-mutation dataset; unaffected shards, posting
// slices and byte-trie subtrees are shared between the two. Cost is
// O(staged features + one map copy per affected shard), independent of the
// dataset size.
func (m *Mutation) Apply() *Trie {
	// A partially-resident base cannot be copy-on-written shard by shard
	// (absent shards have nothing to share); a lazily-opened base faults
	// everything in first. The produced trie is always eager.
	m.base.ensureMaterialized()
	a := newApplier(m.base)
	for _, op := range m.ops {
		a.apply(op)
	}
	a.seal()
	return a.t
}

// applier is the working state of one Apply: the trie under construction
// plus ownership tracking for copy-on-write.
type applier struct {
	t     *Trie
	owned []bool             // shards whose postings map is private to t
	nodes map[*node]struct{} // byte-trie nodes owned (cloned or created) by this applier

	// editing holds the flat working copies of features touched by this
	// applier: the first edit materialises the base's container into a
	// sorted []Posting once (with growth room), every later edit mutates
	// that private slice in place, and seal() converts each survivor back
	// to canonical container form — re-choosing the encoding for every
	// feature that crossed a density threshold during the batch.
	editing map[features.FeatureID][]Posting
}

func newApplier(base *Trie) *applier {
	t := &Trie{
		dict:      base.dict,
		mask:      base.mask,
		nodes:     base.nodes,
		dead:      maps.Clone(base.dead),
		shards:    append([]shard(nil), base.shards...),
		policy:    base.policy,
		probeCost: base.probeCost,
	}
	// The root is cloned up front so path copies below never write a node
	// reachable from the base.
	t.root = *cloneNode(&base.root)
	return &applier{
		t:       t,
		owned:   make([]bool, len(t.shards)),
		nodes:   map[*node]struct{}{},
		editing: map[features.FeatureID][]Posting{},
	}
}

// seal converts every surviving edited feature back into canonical
// container form and installs it in its (applier-owned) shard map.
func (a *applier) seal() {
	for id, ps := range a.editing {
		a.shardFor(id).posts[id] = sealPostings(a.t.policy, ps)
	}
	a.editing = nil
}

// cloneNode shallow-copies a byte-trie node with private label/children
// slices (the grandchildren stay shared).
func cloneNode(n *node) *node {
	return &node{
		labels:   append([]byte(nil), n.labels...),
		children: append([]*node(nil), n.children...),
		id:       n.id,
		terminal: n.terminal,
	}
}

// shardFor returns a privately owned postings map for the feature's shard,
// copying the base's map on first touch.
func (a *applier) shardFor(id features.FeatureID) *shard {
	s := int(uint32(id) & a.t.mask)
	if !a.owned[s] {
		a.t.shards[s].posts = maps.Clone(a.t.shards[s].posts)
		if a.t.shards[s].posts == nil {
			a.t.shards[s].posts = make(map[features.FeatureID]PostingList)
		}
		a.owned[s] = true
	}
	return &a.t.shards[s]
}

func (a *applier) apply(op mutOp) {
	switch op.kind {
	case opAppend:
		for _, f := range op.feats {
			a.insert(f.Key, Posting{Graph: op.graph, Count: f.Count, Locs: f.Locs})
		}
	case opRemove:
		for _, k := range op.scrub {
			a.removePosting(k, op.graph)
		}
		if op.swapped != op.graph {
			for _, f := range op.feats {
				a.removePosting(f.Key, op.swapped)
			}
			for _, f := range op.feats {
				a.insert(f.Key, Posting{Graph: op.graph, Count: f.Count, Locs: f.Locs})
			}
		}
	}
}

// insert adds one posting for key, interning it, re-creating the byte-trie
// path when the feature is new to (or was drained from) this trie, and
// resurrecting it from the dead set if needed.
func (a *applier) insert(key string, p Posting) {
	id := a.t.dict.Intern(key)
	sh := a.shardFor(id)
	ps, editing := a.editing[id]
	if !editing {
		pl, seen := sh.posts[id]
		if !seen {
			a.insertPathCOW(key, id)
			delete(a.t.dead, id)
		}
		ps = pl.appendPostings(make([]Posting, 0, pl.Len()+4))
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Graph >= p.Graph })
	if i < len(ps) && ps[i].Graph == p.Graph {
		ps[i].Count += p.Count
		ps[i].Locs = unionSorted(ps[i].Locs, p.Locs) // replaces, never mutates
	} else {
		ps = append(ps, Posting{})
		copy(ps[i+1:], ps[i:])
		ps[i] = Posting{Graph: p.Graph, Count: p.Count, Locs: append([]int32(nil), p.Locs...)}
	}
	a.editing[id] = ps
}

// removePosting drops the posting of graph g under key, if present. A
// feature drained to zero postings is deleted, its byte-trie path pruned
// and its ID retired to the dead set.
func (a *applier) removePosting(key string, g int32) {
	id, ok := a.t.dict.Lookup(key)
	if !ok {
		return
	}
	sh := a.shardFor(id)
	ps, editing := a.editing[id]
	if !editing {
		pl, seen := sh.posts[id]
		if !seen {
			return
		}
		if _, member := pl.Rank(g); !member {
			return // avoid materialising a feature this op does not touch
		}
		ps = pl.appendPostings(make([]Posting, 0, pl.Len()))
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Graph >= g })
	if i >= len(ps) || ps[i].Graph != g {
		return
	}
	if len(ps) == 1 {
		delete(sh.posts, id)
		delete(a.editing, id)
		a.removePathCOW(key)
		if a.t.dead == nil {
			a.t.dead = make(map[features.FeatureID]struct{})
		}
		a.t.dead[id] = struct{}{}
		return
	}
	ps = append(ps[:i], ps[i+1:]...)
	a.editing[id] = ps
}

// child returns n's child for byte b and its index, or (nil, insertion
// point) when absent.
func childOf(n *node, b byte) (*node, int) {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i], i
	}
	return nil, i
}

// ownedChild descends from n (which must be applier-owned) to its child for
// byte b, cloning the child first unless this applier already owns it.
func (a *applier) ownedChild(n *node, b byte) *node {
	c, i := childOf(n, b)
	if c == nil {
		return nil
	}
	if _, ok := a.nodes[c]; !ok {
		c = cloneNode(c)
		a.nodes[c] = struct{}{}
		n.children[i] = c
	}
	return c
}

// insertPathCOW records key in the byte trie by path copying: every node on
// the path is applier-owned (cloned at most once per Apply); missing nodes
// are created, counted into t.nodes.
func (a *applier) insertPathCOW(key string, id features.FeatureID) {
	n := &a.t.root
	for i := 0; i < len(key); i++ {
		b := key[i]
		if c := a.ownedChild(n, b); c != nil {
			n = c
			continue
		}
		c := &node{}
		a.nodes[c] = struct{}{}
		_, at := childOf(n, b)
		n.labels = append(n.labels, 0)
		copy(n.labels[at+1:], n.labels[at:])
		n.labels[at] = b
		n.children = append(n.children, nil)
		copy(n.children[at+1:], n.children[at:])
		n.children[at] = c
		a.t.nodes++
		n = c
	}
	n.terminal = true
	n.id = id
}

// removePathCOW unsets key's terminal and prunes any childless non-terminal
// suffix of its path, again by path copying.
func (a *applier) removePathCOW(key string) {
	type step struct {
		parent *node
		b      byte
	}
	path := make([]step, 0, len(key))
	n := &a.t.root
	for i := 0; i < len(key); i++ {
		b := key[i]
		c := a.ownedChild(n, b)
		if c == nil {
			return // key was never in the byte trie
		}
		path = append(path, step{parent: n, b: b})
		n = c
	}
	n.terminal = false
	for i := len(path) - 1; i >= 0; i-- {
		if len(n.children) > 0 || n.terminal {
			break
		}
		p := path[i].parent
		_, at := childOf(p, path[i].b)
		p.labels = append(p.labels[:at], p.labels[at+1:]...)
		p.children = append(p.children[:at], p.children[at+1:]...)
		a.t.nodes--
		n = p
	}
}
