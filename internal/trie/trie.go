// Package trie implements the feature-keyed postings store shared by the
// GraphGrepSX and Grapes dataset indexes and by iGQ's Isub/Isuper query
// indexes (the paper's Algorithm 1 stores query features "in a trie").
//
// Keys are canonical feature strings (package features), interned into dense
// FeatureIDs by a features.Dict — shared across indexes or private to one
// trie. The hot lookup path is ID-keyed: postings live in a flat
// map[FeatureID][]Posting probed by integer, so a query canonicalised once
// can be checked against any number of tries without re-hashing strings.
// The byte-level trie over the canonical keys is kept for what genuinely
// needs strings: lexicographic Walk, persistence, and the node-count /
// size accounting the paper reports (Fig 18).
//
// Children are kept in sorted compact slices: feature alphabets are tiny
// (digits, '.', ':' and a few letters), so binary search over a slice beats
// per-node maps on both memory and cache behaviour.
package trie

import (
	"sort"

	"repro/internal/features"
)

// Posting records one graph's occurrences of a feature.
type Posting struct {
	Graph int32   // graph identifier (dataset position or cache slot)
	Count int32   // number of occurrences of the feature in the graph
	Locs  []int32 // optional sorted vertex locations (Grapes); may be nil
}

type node struct {
	labels   []byte
	children []*node
	id       features.FeatureID
	terminal bool
}

func (n *node) child(b byte) *node {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i]
	}
	return nil
}

func (n *node) ensureChild(b byte) *node {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i]
	}
	c := &node{}
	n.labels = append(n.labels, 0)
	copy(n.labels[i+1:], n.labels[i:])
	n.labels[i] = b
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// Trie maps canonical feature keys to postings lists, with an ID-keyed fast
// path for callers that have already interned their features.
type Trie struct {
	dict  *features.Dict
	root  node
	posts map[features.FeatureID][]Posting
	nodes int
}

// New returns an empty trie with a private feature dictionary.
func New() *Trie { return NewWithDict(features.NewDict()) }

// NewWithDict returns an empty trie whose keys are interned through d —
// shared with other tries so that all of them are probed by the same IDs.
func NewWithDict(d *features.Dict) *Trie {
	return &Trie{dict: d, posts: make(map[features.FeatureID][]Posting)}
}

// Dict returns the trie's feature dictionary.
func (t *Trie) Dict() *features.Dict { return t.dict }

// Len returns the number of distinct keys stored.
func (t *Trie) Len() int { return len(t.posts) }

// NodeCount returns the number of internal trie nodes (excluding the root),
// an index-size proxy.
func (t *Trie) NodeCount() int { return t.nodes }

// insertPath records key in the byte trie with its interned ID.
func (t *Trie) insertPath(key string, id features.FeatureID) {
	n := &t.root
	for i := 0; i < len(key); i++ {
		before := len(n.labels)
		c := n.ensureChild(key[i])
		if len(n.labels) != before {
			t.nodes++
		}
		n = c
	}
	n.terminal = true
	n.id = id
}

// Insert adds (or merges) a posting for key, interning it into the
// dictionary. Postings for a key are kept sorted by graph id; inserting the
// same (key, graph) twice accumulates the count and unions locations.
func (t *Trie) Insert(key string, p Posting) {
	id := t.dict.Intern(key)
	if _, seen := t.posts[id]; !seen {
		t.insertPath(key, id)
	}
	t.addPosting(id, p)
}

// InsertID adds (or merges) a posting for an already-interned feature — the
// hot build path for callers enumerating features as IDs.
func (t *Trie) InsertID(id features.FeatureID, p Posting) {
	if _, seen := t.posts[id]; !seen {
		t.insertPath(t.dict.Key(id), id)
	}
	t.addPosting(id, p)
}

func (t *Trie) addPosting(id features.FeatureID, p Posting) {
	ps := t.posts[id]
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Graph >= p.Graph })
	if i < len(ps) && ps[i].Graph == p.Graph {
		ps[i].Count += p.Count
		ps[i].Locs = unionSorted(ps[i].Locs, p.Locs)
		t.posts[id] = ps
		return
	}
	ps = append(ps, Posting{})
	copy(ps[i+1:], ps[i:])
	ps[i] = Posting{Graph: p.Graph, Count: p.Count, Locs: append([]int32(nil), p.Locs...)}
	t.posts[id] = ps
}

// Get returns the postings for key, or nil if the key was never inserted
// into this trie. The returned slice is owned by the trie; callers must not
// modify it.
func (t *Trie) Get(key string) []Posting {
	id, ok := t.dict.Lookup(key)
	if !ok {
		return nil
	}
	return t.posts[id]
}

// GetByID returns the postings for an interned feature, or nil if this trie
// holds none. The returned slice is owned by the trie.
func (t *Trie) GetByID(id features.FeatureID) []Posting { return t.posts[id] }

// Contains reports whether key currently has at least one posting. A key
// whose postings were all drained by RemoveGraph is no longer contained.
func (t *Trie) Contains(key string) bool { return len(t.Get(key)) > 0 }

// Walk visits every (key, postings) pair in lexicographic key order.
func (t *Trie) Walk(fn func(key string, postings []Posting)) {
	var buf []byte
	var rec func(n *node)
	rec = func(n *node) {
		if n.terminal {
			fn(string(buf), t.posts[n.id])
		}
		for i, b := range n.labels {
			buf = append(buf, b)
			rec(n.children[i])
			buf = buf[:len(buf)-1]
		}
	}
	rec(&t.root)
}

// RemoveGraph deletes every posting of the given graph id across all keys.
// Keys left with no postings remain in the trie structurally but report no
// postings (and Contains returns false for them); Rebuild (constructing a
// fresh trie) is the intended compaction path, matching the paper's
// shadow-index maintenance where the query index is rebuilt over the
// retained cache contents.
func (t *Trie) RemoveGraph(id int32) {
	for fid, ps := range t.posts {
		i := sort.Search(len(ps), func(i int) bool { return ps[i].Graph >= id })
		if i < len(ps) && ps[i].Graph == id {
			t.posts[fid] = append(ps[:i], ps[i+1:]...)
		}
	}
}

// SizeBytes approximates the in-memory footprint of the trie (nodes,
// postings and location lists), used for the paper's Fig 18 accounting.
func (t *Trie) SizeBytes() int {
	sz := 0
	var rec func(n *node)
	rec = func(n *node) {
		sz += 64 + len(n.labels) + 8*len(n.children)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(&t.root)
	for _, ps := range t.posts {
		sz += 16 // postings-map entry
		for _, p := range ps {
			sz += 12 + 4*len(p.Locs)
		}
	}
	return sz
}

func unionSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
