// Package trie implements the byte-level feature trie shared by the
// GraphGrepSX and Grapes dataset indexes and by iGQ's Isuper query index
// (the paper's Algorithm 1 stores query features "in a trie").
//
// Keys are canonical feature strings (package features); terminal nodes
// carry postings: one entry per graph containing the feature, with its
// occurrence count and, optionally, the vertex locations the feature touches
// (the Grapes location information).
//
// Children are kept in sorted compact slices: feature alphabets are tiny
// (digits, '.', ':' and a few letters), so binary search over a slice beats
// per-node maps on both memory and cache behaviour — and index size is
// itself a reported experimental quantity (paper Fig 18).
package trie

import (
	"sort"
)

// Posting records one graph's occurrences of a feature.
type Posting struct {
	Graph int32   // graph identifier (dataset position or cache slot)
	Count int32   // number of occurrences of the feature in the graph
	Locs  []int32 // optional sorted vertex locations (Grapes); may be nil
}

type node struct {
	labels   []byte
	children []*node
	postings []Posting
	terminal bool
}

func (n *node) child(b byte) *node {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i]
	}
	return nil
}

func (n *node) ensureChild(b byte) *node {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i]
	}
	c := &node{}
	n.labels = append(n.labels, 0)
	copy(n.labels[i+1:], n.labels[i:])
	n.labels[i] = b
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// Trie maps canonical feature keys to postings lists.
type Trie struct {
	root  node
	keys  int
	nodes int
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Len returns the number of distinct keys stored.
func (t *Trie) Len() int { return t.keys }

// NodeCount returns the number of internal trie nodes (excluding the root),
// an index-size proxy.
func (t *Trie) NodeCount() int { return t.nodes }

// Insert adds (or merges) a posting for key. Postings for a key are kept
// sorted by graph id; inserting the same (key, graph) twice accumulates the
// count and unions locations.
func (t *Trie) Insert(key string, p Posting) {
	n := &t.root
	for i := 0; i < len(key); i++ {
		before := len(n.labels)
		c := n.ensureChild(key[i])
		if len(n.labels) != before {
			t.nodes++
		}
		n = c
	}
	if !n.terminal {
		n.terminal = true
		t.keys++
	}
	i := sort.Search(len(n.postings), func(i int) bool { return n.postings[i].Graph >= p.Graph })
	if i < len(n.postings) && n.postings[i].Graph == p.Graph {
		n.postings[i].Count += p.Count
		n.postings[i].Locs = unionSorted(n.postings[i].Locs, p.Locs)
		return
	}
	n.postings = append(n.postings, Posting{})
	copy(n.postings[i+1:], n.postings[i:])
	n.postings[i] = Posting{Graph: p.Graph, Count: p.Count, Locs: append([]int32(nil), p.Locs...)}
}

// Get returns the postings for key, or nil if absent. The returned slice is
// owned by the trie; callers must not modify it.
func (t *Trie) Get(key string) []Posting {
	n := &t.root
	for i := 0; i < len(key); i++ {
		n = n.child(key[i])
		if n == nil {
			return nil
		}
	}
	if !n.terminal {
		return nil
	}
	return n.postings
}

// Contains reports whether key is present.
func (t *Trie) Contains(key string) bool { return t.Get(key) != nil }

// Walk visits every (key, postings) pair in lexicographic key order.
func (t *Trie) Walk(fn func(key string, postings []Posting)) {
	var buf []byte
	var rec func(n *node)
	rec = func(n *node) {
		if n.terminal {
			fn(string(buf), n.postings)
		}
		for i, b := range n.labels {
			buf = append(buf, b)
			rec(n.children[i])
			buf = buf[:len(buf)-1]
		}
	}
	rec(&t.root)
}

// RemoveGraph deletes every posting of the given graph id across all keys.
// Keys left with no postings remain in the trie structurally but report no
// postings; Rebuild (constructing a fresh trie) is the intended compaction
// path, matching the paper's shadow-index maintenance where the query index
// is rebuilt over the retained cache contents.
func (t *Trie) RemoveGraph(id int32) {
	var rec func(n *node)
	rec = func(n *node) {
		if n.terminal {
			i := sort.Search(len(n.postings), func(i int) bool { return n.postings[i].Graph >= id })
			if i < len(n.postings) && n.postings[i].Graph == id {
				n.postings = append(n.postings[:i], n.postings[i+1:]...)
			}
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(&t.root)
}

// SizeBytes approximates the in-memory footprint of the trie (nodes,
// postings and location lists), used for the paper's Fig 18 accounting.
func (t *Trie) SizeBytes() int {
	sz := 0
	var rec func(n *node)
	rec = func(n *node) {
		sz += 64 + len(n.labels) + 8*len(n.children)
		for _, p := range n.postings {
			sz += 12 + 4*len(p.Locs)
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(&t.root)
	return sz
}

func unionSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
