// Package trie implements the sharded, feature-keyed postings store shared
// by the GraphGrepSX and Grapes dataset indexes and by iGQ's Isub/Isuper
// query indexes (the paper's Algorithm 1 stores query features "in a trie").
//
// Keys are canonical feature strings (package features), interned into dense
// FeatureIDs by a features.Dict — shared across indexes or private to one
// trie. The hot lookup path is ID-keyed and sharded: postings live in K
// independent shards selected by FeatureID % K (K a power of two, so the
// probe is a mask plus one small-map lookup), which keeps the per-shard maps
// cache-resident for multi-feature filtering and — more importantly — lets
// index builds run in parallel: Builder gives each build goroutine private
// per-shard staging buffers and then merges every shard independently, so a
// K-shard build uses up to K merge workers without a single lock or atomic
// on the postings themselves. Grapes is explicitly a parallel indexing
// method in its original paper, so the contention-free build path is
// fidelity as much as speed. After a build the shards are immutable and the
// read path (Get/GetByID/Walk) is lock-free by construction.
//
// Sharding is invisible to correctness: the shard holding a feature is a
// pure function of its ID, so any shard count yields the same postings, the
// same Walk order and the same filter results. The byte-level trie over the
// canonical keys is kept for what genuinely needs strings: lexicographic
// Walk, persistence, and the node-count / size accounting the paper reports
// (Fig 18).
//
// Children are kept in sorted compact slices: feature alphabets are tiny
// (digits, '.', ':' and a few letters), so binary search over a slice beats
// per-node maps on both memory and cache behaviour.
//
// Postings are stored in cardinality-adaptive containers (container.go):
// each feature's graph-ID set is an array, bitmap or run-length container
// chosen by byte cost, with occurrence counts and Grapes vertex locations
// in rank-aligned satellite arrays elided in the default case
// (postinglist.go). The choice is a pure function of the member set, so
// sequential builds, parallel merges, COW mutations and snapshot loads all
// converge on identical representations.
//
// The store persists itself (WriteTo/ReadFrom): a versioned header carrying
// the feature dictionary in ID order, then one independently-decodable,
// CRC-guarded segment per shard with delta-encoded postings and location
// lists. Segments decode in parallel on load and a loaded trie is
// observationally identical to the one saved — see persist.go for the full
// format specification and compatibility rules.
package trie

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/features"
)

// Posting records one graph's occurrences of a feature.
type Posting struct {
	Graph int32   // graph identifier (dataset position or cache slot)
	Count int32   // number of occurrences of the feature in the graph
	Locs  []int32 // optional sorted vertex locations (Grapes); may be nil
}

type node struct {
	labels   []byte
	children []*node
	id       features.FeatureID
	terminal bool
}

func (n *node) ensureChild(b byte) *node {
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= b })
	if i < len(n.labels) && n.labels[i] == b {
		return n.children[i]
	}
	c := &node{}
	n.labels = append(n.labels, 0)
	copy(n.labels[i+1:], n.labels[i:])
	n.labels[i] = b
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// shard is one independent slice of the postings space: every feature with
// ID ≡ s (mod K) lives in shard s and nowhere else.
type shard struct {
	posts map[features.FeatureID]PostingList
}

// Trie maps canonical feature keys to postings lists, with an ID-keyed,
// sharded fast path for callers that have already interned their features.
type Trie struct {
	dict   *features.Dict
	shards []shard
	mask   uint32 // len(shards)-1; shard counts are powers of two
	root   node
	nodes  int

	// dead holds features whose postings this trie drained by removal.
	// Their dictionary entries cannot be reclaimed (FeatureIDs are dense
	// process-local handles shared across index generations), so the trie
	// remembers them instead: dead features are excluded from size
	// accounting (LiveDictSizeBytes) and from persisted snapshots, and are
	// resurrected if a later insert re-introduces the key. Invariant: a
	// dead feature has no postings in this trie.
	dead map[features.FeatureID]struct{}

	// stamp is the dataset fingerprint carried by the last delta journal
	// replayed into this trie by ReadFrom (nil when the snapshot had no
	// journal sections); see journal.go.
	stamp *JournalStamp

	// recovered is the tail-recovery report of the last ReadFrom (nil
	// when that load was clean); see persist.go's durability section.
	recovered *TailRecovery

	// policy selects posting container encodings (AdaptiveContainers by
	// default; ArrayOnlyContainers forces the flat reference encoding).
	// Set before building; inherited by COW mutation and Reshard.
	policy ContainerPolicy

	// probeCost is the calibrated galloping probe cost used by the count
	// filter's intersection cost model (0 ⇒ the package default). Written
	// once at Build time by the index owner, before concurrent reads.
	probeCost int

	// lazyLive is non-nil while this trie serves a lazily-opened snapshot
	// (OpenLazy, lazy.go): GetByID routes through its resident-shard table
	// and whole-store operations materialise first. Materialize clears it.
	lazyLive atomic.Pointer[lazyState]

	// lazyOrigin is set once by OpenLazy and survives Materialize, so
	// Residency keeps reporting fault/eviction counters afterwards.
	lazyOrigin *lazyState
}

// maxShards bounds the shard count: beyond this the per-shard maps are too
// sparse to pay for themselves even on very wide machines.
const maxShards = 64

// DefaultShards is the shard count used when callers do not pick one: the
// smallest power of two covering GOMAXPROCS, clamped to [1, 64], so a
// default build can use one merge worker per shard on the machine at hand.
func DefaultShards() int { return normalizeShards(runtime.GOMAXPROCS(0)) }

// normalizeShards rounds k up to a power of two in [1, maxShards];
// non-positive k selects DefaultShards.
func normalizeShards(k int) int {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > maxShards {
		k = maxShards
	}
	p := 1
	for p < k {
		p <<= 1
	}
	return p
}

// New returns an empty trie with a private feature dictionary and the
// default shard count.
func New() *Trie { return NewWithDict(features.NewDict()) }

// NewWithDict returns an empty trie whose keys are interned through d —
// shared with other tries so that all of them are probed by the same IDs.
// The shard count defaults to DefaultShards().
func NewWithDict(d *features.Dict) *Trie { return NewSharded(d, 0) }

// NewSharded returns an empty trie with an explicit shard count (rounded up
// to a power of two, clamped to 64; ≤ 0 selects DefaultShards()). Any shard
// count yields identical observable behaviour; the count only decides how
// much build and probe parallelism the store can exploit.
func NewSharded(d *features.Dict, k int) *Trie {
	k = normalizeShards(k)
	t := &Trie{dict: d, shards: make([]shard, k), mask: uint32(k - 1)}
	for i := range t.shards {
		t.shards[i].posts = make(map[features.FeatureID]PostingList)
	}
	return t
}

// SetContainerPolicy selects how posting containers are encoded. Call
// before inserting; an existing store is not re-encoded. The policy is
// inherited by COW mutations (Mutation.Apply) and Reshard.
func (t *Trie) SetContainerPolicy(p ContainerPolicy) { t.policy = p }

// Policy returns the trie's container policy.
func (t *Trie) Policy() ContainerPolicy { return t.policy }

// SetGallopProbeCost records the calibrated galloping probe cost for this
// dataset (see index.CalibrateGallopProbeCost); 0 restores the package
// default. Called by index owners at Build time, before concurrent reads.
func (t *Trie) SetGallopProbeCost(c int) { t.probeCost = c }

// GallopProbeCost returns the calibrated probe cost (0 ⇒ default).
func (t *Trie) GallopProbeCost() int { return t.probeCost }

// Dict returns the trie's feature dictionary.
func (t *Trie) Dict() *features.Dict { return t.dict }

// ShardCount returns the number of postings shards (a power of two).
func (t *Trie) ShardCount() int { return len(t.shards) }

// ShardOf returns the shard index holding an interned feature's postings —
// a pure function of the ID, so callers (the count filter) can group probes
// by shard.
func (t *Trie) ShardOf(id features.FeatureID) int { return int(uint32(id) & t.mask) }

func (t *Trie) shardFor(id features.FeatureID) *shard { return &t.shards[uint32(id)&t.mask] }

// Len returns the number of distinct keys stored.
func (t *Trie) Len() int {
	t.ensureMaterialized()
	n := 0
	for i := range t.shards {
		n += len(t.shards[i].posts)
	}
	return n
}

// MaxPostingLen returns the cardinality of the longest posting list (0 for
// an empty store) — the dataset shape statistic the intersection cost
// model calibrates against.
func (t *Trie) MaxPostingLen() int {
	t.ensureMaterialized()
	longest := 0
	for i := range t.shards {
		for _, pl := range t.shards[i].posts {
			if n := pl.Len(); n > longest {
				longest = n
			}
		}
	}
	return longest
}

// NodeCount returns the number of internal trie nodes (excluding the root),
// an index-size proxy.
func (t *Trie) NodeCount() int {
	t.ensureMaterialized()
	return t.nodes
}

// insertPath records key in the byte trie with its interned ID.
func (t *Trie) insertPath(key string, id features.FeatureID) {
	n := &t.root
	for i := 0; i < len(key); i++ {
		before := len(n.labels)
		c := n.ensureChild(key[i])
		if len(n.labels) != before {
			t.nodes++
		}
		n = c
	}
	n.terminal = true
	n.id = id
}

// Insert adds (or merges) a posting for key, interning it into the
// dictionary. Postings for a key are kept sorted by graph id; inserting the
// same (key, graph) twice accumulates the count and unions locations.
// Not safe for concurrent use — parallel builds go through Builder.
func (t *Trie) Insert(key string, p Posting) {
	t.ensureMaterialized()
	id := t.dict.Intern(key)
	sh := t.shardFor(id)
	if _, seen := sh.posts[id]; !seen {
		t.insertPath(key, id)
		delete(t.dead, id)
	}
	t.addPosting(sh, id, p)
}

// InsertID adds (or merges) a posting for an already-interned feature — the
// hot sequential build path for callers enumerating features as IDs.
func (t *Trie) InsertID(id features.FeatureID, p Posting) {
	t.ensureMaterialized()
	sh := t.shardFor(id)
	if _, seen := sh.posts[id]; !seen {
		t.insertPath(t.dict.Key(id), id)
		delete(t.dead, id)
	}
	t.addPosting(sh, id, p)
}

func (t *Trie) addPosting(sh *shard, id features.FeatureID, p Posting) {
	pl := sh.posts[id]
	pl.add(t.policy, p)
	sh.posts[id] = pl
}

// Get materialises the postings for key as a flat []Posting, or nil if the
// key was never inserted into this trie. The slice is freshly allocated;
// hot paths use GetByID and read the container form directly.
func (t *Trie) Get(key string) []Posting {
	id, ok := t.dict.Lookup(key)
	if !ok {
		return nil
	}
	return t.GetByID(id).Postings()
}

// GetByID returns the postings for an interned feature (a zero PostingList
// if this trie holds none). On an eager trie this is lock-free: one mask
// plus one map probe against an immutable shard. On a lazily-opened trie
// (OpenLazy) the probe routes through the resident-shard table, faulting
// the shard's segment in on first touch — a fault-in failure panics with
// *ShardFaultError (see lazy.go).
func (t *Trie) GetByID(id features.FeatureID) PostingList {
	if ls := t.lazyLive.Load(); ls != nil {
		return ls.get(id)
	}
	return t.shardFor(id).posts[id]
}

// Contains reports whether key currently has at least one posting. A key
// whose postings were all drained by RemoveGraph is no longer contained.
func (t *Trie) Contains(key string) bool {
	id, ok := t.dict.Lookup(key)
	if !ok {
		return false
	}
	return t.GetByID(id).Len() > 0
}

// Walk visits every (key, postings) pair in lexicographic key order. The
// postings slice is materialised fresh per key.
func (t *Trie) Walk(fn func(key string, postings []Posting)) {
	t.ensureMaterialized()
	var buf []byte
	var rec func(n *node)
	rec = func(n *node) {
		if n.terminal {
			fn(string(buf), t.GetByID(n.id).Postings())
		}
		for i, b := range n.labels {
			buf = append(buf, b)
			rec(n.children[i])
			buf = buf[:len(buf)-1]
		}
	}
	rec(&t.root)
}

// RemoveGraph deletes every posting of the given graph id across all keys.
// Features drained to zero postings are removed outright: their postings
// map entry is deleted, their byte-trie path is pruned (so Walk, NodeCount,
// SizeBytes and a persisted snapshot all agree with a trie never holding
// the key) and their dictionary ID is retired to the dead set. Like the
// build path, RemoveGraph is exclusive — no concurrent readers; concurrent
// mutation goes through Mutation/Apply instead.
func (t *Trie) RemoveGraph(id int32) {
	t.ensureMaterialized()
	for s := range t.shards {
		posts := t.shards[s].posts
		for fid, pl := range posts {
			removed, drained := pl.remove(t.policy, id)
			if !removed {
				continue
			}
			if drained {
				delete(posts, fid)
				t.removePath(t.dict.Key(fid))
				if t.dead == nil {
					t.dead = make(map[features.FeatureID]struct{})
				}
				t.dead[fid] = struct{}{}
				continue
			}
			posts[fid] = pl
		}
	}
}

// removePath unsets key's terminal flag in the byte trie and prunes the
// childless non-terminal tail of its path (the in-place sibling of the
// applier's removePathCOW; exclusive access required).
func (t *Trie) removePath(key string) {
	type step struct {
		parent *node
		at     int
	}
	path := make([]step, 0, len(key))
	n := &t.root
	for i := 0; i < len(key); i++ {
		c, at := childOf(n, key[i])
		if c == nil {
			return
		}
		path = append(path, step{parent: n, at: at})
		n = c
	}
	n.terminal = false
	for i := len(path) - 1; i >= 0; i-- {
		if len(n.children) > 0 || n.terminal {
			break
		}
		p := path[i].parent
		at := path[i].at
		p.labels = append(p.labels[:at], p.labels[at+1:]...)
		p.children = append(p.children[:at], p.children[at+1:]...)
		t.nodes--
		n = p
	}
}

// SizeBytes approximates the in-memory footprint of the trie (nodes, shard
// tables, postings and location lists), used for the paper's Fig 18
// accounting.
func (t *Trie) SizeBytes() int {
	if t.lazyLive.Load() != nil {
		// Lazily opened: report the resident footprint instead of forcing
		// every shard in — a monitoring scrape must never defeat laziness.
		// Converges on the eager figure as shards fault in; identical after
		// Materialize (which also builds the byte-trie nodes counted below).
		return int(t.Residency().ResidentBytes)
	}
	sz := 0
	var rec func(n *node)
	rec = func(n *node) {
		sz += 64 + len(n.labels) + 8*len(n.children)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(&t.root)
	sz += 48 * len(t.shards) // shard headers
	for s := range t.shards {
		for _, pl := range t.shards[s].posts {
			sz += 48 // postings-map entry + PostingList header
			sz += pl.SizeBytes()
		}
	}
	return sz
}

// LiveDictSizeBytes reports the feature dictionary's footprint counted at
// this trie's live vocabulary: Dict.SizeBytes minus the entries this trie
// retired to the dead set. Index owners (the path methods) report this
// instead of Dict.SizeBytes so an incrementally maintained index accounts
// exactly like a from-scratch build over the surviving dataset — retired
// keys are bookkeeping residue, not index content.
func (t *Trie) LiveDictSizeBytes() int {
	if t.lazyLive.Load() != nil {
		// Retired-feature accounting needs the drain sets, which live in
		// shards not yet resident; while lazy, report the full dictionary
		// footprint (an upper bound) rather than faulting everything in.
		return t.dict.SizeBytes()
	}
	sz := t.dict.SizeBytes()
	for id := range t.dead {
		sz -= features.DictEntrySizeBytes(t.dict.Key(id))
	}
	return sz
}

// DeadLen returns the number of retired (drained) features this trie
// tracks — diagnostics and tests.
func (t *Trie) DeadLen() int {
	t.ensureMaterialized()
	return len(t.dead)
}

// ParallelFor fans n items out over up to workers goroutines (capped at n;
// ≤ 1 runs inline). Each goroutine receives its worker index — for
// per-worker state like a BuildWorker or an enumeration scratch — and a
// claim function yielding successive item indices until it returns -1:
//
//	trie.ParallelFor(len(db), workers, func(w int, claim func() int) {
//		bw := b.Worker(w)
//		for i := claim(); i >= 0; i = claim() { ... }
//	})
//
// ParallelFor returns after every worker has finished, so it establishes
// the happens-before edge parallel builds rely on. Shared by the shard
// merge below, the path-method builds and core's cache-side index builds.
func ParallelFor(n, workers int, body func(worker int, claim func() int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	claim := func() int {
		i := int(next.Add(1)) - 1
		if i >= n {
			return -1
		}
		return i
	}
	if workers <= 1 {
		body(0, claim)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w, claim)
		}(w)
	}
	wg.Wait()
}

// stagedPosting is one posting awaiting its shard merge.
type stagedPosting struct {
	id features.FeatureID
	p  Posting
}

// Builder assembles a trie from concurrent producers without contention on
// the postings store. Each build goroutine claims one BuildWorker and stages
// its postings into private per-shard buffers; Merge then folds every
// shard's staged postings in — shards in parallel (they are disjoint by
// construction), each shard deterministically: staged postings are ordered
// by (FeatureID, graph id) before insertion, so the resulting store is
// identical to a sequential build of the same postings regardless of how
// graphs were distributed over workers or interleaved in time.
//
// The one shared structure workers touch is the feature dictionary
// (BuildWorker.Insert interns through it, internally synchronised); callers
// that pre-intern and stage by ID avoid even that.
type Builder struct {
	t       *Trie
	workers []*BuildWorker
}

// BuildWorker is one goroutine's private staging area. Each BuildWorker may
// be used by only one goroutine at a time; distinct BuildWorkers of the same
// Builder are safe to use concurrently.
type BuildWorker struct {
	t      *Trie
	staged [][]stagedPosting // one buffer per shard
}

// NewBuilder returns a Builder with the given number of staging workers
// (min 1). The trie must not be read or written between NewBuilder and the
// completion of Merge.
func (t *Trie) NewBuilder(workers int) *Builder {
	t.ensureMaterialized()
	if workers < 1 {
		workers = 1
	}
	b := &Builder{t: t, workers: make([]*BuildWorker, workers)}
	for i := range b.workers {
		b.workers[i] = &BuildWorker{t: t, staged: make([][]stagedPosting, len(t.shards))}
	}
	return b
}

// Worker returns staging worker i (0 ≤ i < the count passed to NewBuilder).
func (b *Builder) Worker(i int) *BuildWorker { return b.workers[i] }

// Insert interns key and stages a posting for it. Safe to call from the
// worker's own goroutine while other workers stage concurrently.
func (w *BuildWorker) Insert(key string, p Posting) {
	w.InsertID(w.t.dict.Intern(key), p)
}

// InsertID stages a posting for an already-interned feature.
func (w *BuildWorker) InsertID(id features.FeatureID, p Posting) {
	s := int(uint32(id) & w.t.mask)
	w.staged[s] = append(w.staged[s], stagedPosting{id: id, p: p})
}

// Merge folds all staged postings into the trie: one merge task per shard,
// fanned out over up to GOMAXPROCS goroutines, each inserting its shard's
// postings in (FeatureID, graph) order so the result is independent of the
// staging schedule. Duplicate (feature, graph) postings merge exactly as
// sequential Insert would (counts accumulate, locations union). Merge must
// be called once, after every staging goroutine has finished; afterwards the
// Builder is drained and the trie is ready for lock-free reads.
func (b *Builder) Merge() {
	t := b.t
	k := len(t.shards)
	newIDs := make([][]features.FeatureID, k)
	ParallelFor(k, runtime.GOMAXPROCS(0), func(_ int, claim func() int) {
		for s := claim(); s >= 0; s = claim() {
			newIDs[s] = t.mergeShard(s, b.workers)
		}
	})
	// Byte-trie paths for first-seen keys. The trie's structure (and hence
	// Walk order and NodeCount) is a function of the key set alone, so the
	// insertion order here does not matter; doing it after the parallel
	// phase keeps the byte trie single-writer.
	for _, ids := range newIDs {
		for _, id := range ids {
			t.insertPath(t.dict.Key(id), id)
			delete(t.dead, id) // resurrect a previously drained feature
		}
	}
	for _, w := range b.workers {
		for s := range w.staged {
			w.staged[s] = nil
		}
	}
}

// mergeShard inserts every staged posting for shard s and returns the IDs
// that were new to this trie (their byte-trie paths are still missing).
func (t *Trie) mergeShard(s int, workers []*BuildWorker) []features.FeatureID {
	sh := &t.shards[s]
	n := 0
	for _, w := range workers {
		n += len(w.staged[s])
	}
	if n == 0 {
		return nil
	}
	all := make([]stagedPosting, 0, n)
	for _, w := range workers {
		all = append(all, w.staged[s]...)
	}
	slices.SortFunc(all, func(a, b stagedPosting) int {
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		if a.p.Graph != b.p.Graph {
			if a.p.Graph < b.p.Graph {
				return -1
			}
			return 1
		}
		return 0
	})
	var newIDs []features.FeatureID
	for i := 0; i < len(all); {
		j := i
		id := all[i].id
		for j < len(all) && all[j].id == id {
			j++
		}
		// Fold the group into one sorted run; duplicate (feature, graph)
		// pairs merge commutatively, so the fold is order-insensitive.
		run := make([]Posting, 0, j-i)
		for _, sp := range all[i:j] {
			if m := len(run); m > 0 && run[m-1].Graph == sp.p.Graph {
				run[m-1].Count += sp.p.Count
				run[m-1].Locs = unionSorted(run[m-1].Locs, sp.p.Locs)
				continue
			}
			run = append(run, Posting{Graph: sp.p.Graph, Count: sp.p.Count, Locs: append([]int32(nil), sp.p.Locs...)})
		}
		if old, seen := sh.posts[id]; seen {
			sh.posts[id] = sealPostings(t.policy, mergePostingRuns(old.Postings(), run))
		} else {
			sh.posts[id] = sealPostings(t.policy, run)
			newIDs = append(newIDs, id)
		}
		i = j
	}
	return newIDs
}

// mergePostingRuns merges two graph-sorted posting runs, combining postings
// of the same graph (counts add, locations union).
func mergePostingRuns(a, b []Posting) []Posting {
	out := make([]Posting, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Graph < b[j].Graph:
			out = append(out, a[i])
			i++
		case a[i].Graph > b[j].Graph:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Posting{
				Graph: a[i].Graph,
				Count: a[i].Count + b[j].Count,
				Locs:  unionSorted(a[i].Locs, b[j].Locs),
			})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func unionSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
