package trie

import (
	"bytes"
	"testing"

	"repro/internal/features"
)

// fuzzSeedTrie builds a small representative trie: multi-shard postings,
// location lists, a removal (dead-key compaction on write) and a pending
// byte-trie resurrection case.
func fuzzSeedTrie() *Trie {
	tr := NewSharded(features.NewDict(), 4)
	tr.Insert("ab", Posting{Graph: 0, Count: 2, Locs: []int32{0, 3}})
	tr.Insert("abc", Posting{Graph: 0, Count: 1})
	tr.Insert("abd", Posting{Graph: 1, Count: 4, Locs: []int32{1}})
	tr.Insert("b", Posting{Graph: 2, Count: 1})
	tr.Insert("zz", Posting{Graph: 1, Count: 1})
	tr.RemoveGraph(1) // drains "abd" and "zz": exercises dict compaction
	return tr
}

// fuzzDenseSeedTrie exercises every v3 container tag in one snapshot: a
// contiguous block (runs), an even-id scatter (bitmap), a sparse array and
// a dense feature with counts + locations riding along.
func fuzzDenseSeedTrie() *Trie {
	tr := NewSharded(features.NewDict(), 2)
	for g := int32(0); g < 300; g++ {
		tr.Insert("block", Posting{Graph: g, Count: 1})
	}
	for g := int32(0); g < 600; g += 2 {
		tr.Insert("evens", Posting{Graph: g, Count: 1})
	}
	tr.Insert("sparse", Posting{Graph: 9, Count: 3, Locs: []int32{2, 5}})
	tr.Insert("sparse", Posting{Graph: 412, Count: 1})
	for g := int32(100); g < 260; g++ {
		tr.Insert("sides", Posting{Graph: g, Count: 1 + g%3, Locs: []int32{g % 7}})
	}
	return tr
}

// FuzzTrieReadFrom feeds arbitrary bytes — seeded with valid snapshots of
// every version (current v3 with all three container tags, hand-encoded
// v1/v2 legacy grammars), journaled snapshots, truncations, bit flips and
// hand-crafted corrupt container payloads — into the snapshot decoder. The
// decoder must return an error or a valid trie; it must never panic, the
// sanity bounds must keep a lying length field from forcing an absurd
// allocation, and a failed load must leave the destination untouched.
func FuzzTrieReadFrom(f *testing.F) {
	// Seed: plain v3 snapshot (with a compacted dictionary).
	var v2 bytes.Buffer
	if _, err := fuzzSeedTrie().WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())

	// Seed: v3 snapshot carrying all three container tags (bitmap words,
	// run intervals, arrays, counts and locations).
	var dense bytes.Buffer
	if _, err := fuzzDenseSeedTrie().WriteTo(&dense); err != nil {
		f.Fatal(err)
	}
	f.Add(dense.Bytes())
	f.Add(dense.Bytes()[:len(dense.Bytes())*2/3]) // truncated mid-container
	dflip := append([]byte(nil), dense.Bytes()...)
	dflip[len(dflip)/2] ^= 0x04
	f.Add(dflip)

	// Seeds: hand-encoded legacy v1/v2 snapshots (flat posting runs) over
	// mixed-density data — the promotion path.
	f.Add(encodeLegacySnapshot(1, 2, legacyDataset()))
	f.Add(encodeLegacySnapshot(2, 4, legacyDataset()))

	// Seeds: structurally invalid v3 container payloads behind valid frame
	// CRCs, so the mutation engine starts from bytes that reach the
	// container decoder (not just the envelope checks).
	f.Add(v3Snapshot(append([]byte{3}, uv(2, 1, 1)...)))             // reserved tag
	f.Add(v3Snapshot(append([]byte{segTagBitmap}, uv(3, 0, 0)...)))  // zero words
	f.Add(v3Snapshot(append([]byte{segTagRuns}, uv(4, 1, 0, 2)...))) // length mismatch

	// Seed: current-version snapshot with a journal section holding both op
	// kinds.
	tr := fuzzSeedTrie()
	mut := tr.NewMutation()
	mut.AppendGraph(3, []GraphFeature{{Key: "abd", Count: 2, Locs: []int32{0, 2}}, {Key: "q", Count: 1}})
	mut.RemoveGraph(0, 3,
		[]string{"ab", "abc"},
		[]GraphFeature{{Key: "abd", Count: 2, Locs: []int32{0, 2}}, {Key: "q", Count: 1}})
	var j1 Journal
	mut.RecordTo(&j1)
	f.Add(journaledSeed(f, &j1))

	// Seed: version-1 snapshot (v2 bytes with the version field patched and
	// the section terminator stripped; the v1 grammar has no sections).
	v1 := append([]byte(nil), v2.Bytes()...)
	v1[len(persistMagic)] = 1
	v1 = v1[:len(v1)-1]
	f.Add(v1)

	// Seeds: truncation and bit flips of the valid v2 snapshot.
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	flip := append([]byte(nil), v2.Bytes()...)
	flip[len(flip)/3] ^= 0x20
	f.Add(flip)

	// Seeds: torn journal tails — the crash-mid-append signature the
	// recovery mode must salvage. Truncations at several byte boundaries
	// of the journaled region plus a bit flip inside the journal body.
	journaled := journaledSeed(f, &j1)
	baseLen := len(v2.Bytes())
	for _, cut := range []int{0, 1, (len(journaled) - baseLen) / 2, len(journaled) - baseLen - 1} {
		f.Add(journaled[:baseLen+cut])
	}
	jflip := append([]byte(nil), journaled...)
	jflip[(baseLen+len(jflip))/2] ^= 0x08
	f.Add(jflip)

	// Seed: snapshot truncated inside the segment directory (mid-header of a
	// later shard), so the lazy open's eager phase hits EOF while walking
	// per-shard headers rather than inside a body.
	probe := NewSharded(features.NewDict(), 0)
	if _, _, err := probe.OpenLazy(bytes.NewReader(dense.Bytes()), LazyOptions{}); err != nil {
		f.Fatal(err)
	}
	f.Add(dense.Bytes()[:probe.lazyLive.Load().dir[1].off-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewSharded(features.NewDict(), 0)
		// Error, success, or tail recovery — never a panic, never
		// unbounded allocation, never a half-applied delta.
		n, rec, err := tr.ReadFromOptions(bytes.NewReader(data), LoadOptions{})

		// Lazy leg: the deferred-decode loader must agree with the eager
		// loader on accept/reject — corruption it defers to fault-in has to
		// surface by Materialize, and it must never reject bytes the eager
		// loader accepts.
		lz := NewSharded(features.NewDict(), 0)
		ln, lrec, lerr := lz.OpenLazy(bytes.NewReader(data), LazyOptions{})
		if lerr == nil {
			lerr = lz.Materialize()
		}
		if (err == nil) != (lerr == nil) {
			t.Fatalf("lazy/eager accept disagreement: eager err=%v, lazy err=%v", err, lerr)
		}
		if err != nil {
			return
		}
		if ln != n {
			t.Fatalf("lazy consumed %d bytes, eager %d", ln, n)
		}
		if (rec == nil) != (lrec == nil) || (rec != nil && *rec != *lrec) {
			t.Fatalf("lazy/eager recovery disagreement: eager %+v, lazy %+v", rec, lrec)
		}
		var esave, lsave bytes.Buffer
		if _, err := tr.WriteTo(&esave); err != nil {
			t.Fatal(err)
		}
		if _, err := lz.WriteTo(&lsave); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(esave.Bytes(), lsave.Bytes()) {
			t.Fatal("lazy load re-saves different bytes than eager load")
		}
		if rec == nil {
			// A clean load must agree with strict mode.
			str := NewSharded(features.NewDict(), 0)
			if _, rec2, err2 := str.ReadFromOptions(bytes.NewReader(data), LoadOptions{Strict: true}); err2 != nil || rec2 != nil {
				t.Fatalf("clean load disagrees with strict mode: err=%v rec=%+v", err2, rec2)
			}
			return
		}
		// Tail recovery: a strict load must reject the same bytes, and the
		// committed prefix plus a terminator must be a well-formed snapshot
		// decoding to the identical trie (the committed-prefix oracle — the
		// recovered state contains exactly the fully-committed sections).
		if _, _, err := NewSharded(features.NewDict(), 0).ReadFromOptions(bytes.NewReader(data), LoadOptions{Strict: true}); err == nil {
			t.Fatal("strict mode accepted a snapshot the default mode had to recover")
		}
		if rec.CommittedBytes < 0 || rec.CommittedBytes > int64(len(data)) || n < rec.CommittedBytes {
			t.Fatalf("recovery offsets out of range: %+v (n=%d len=%d)", rec, n, len(data))
		}
		prefix := append(append([]byte(nil), data[:rec.CommittedBytes]...), sectionEnd)
		oracle := NewSharded(features.NewDict(), 0)
		if _, rec2, err := oracle.ReadFromOptions(bytes.NewReader(prefix), LoadOptions{Strict: true}); err != nil || rec2 != nil {
			t.Fatalf("committed prefix fails strict load: err=%v rec=%+v", err, rec2)
		}
		var got, want bytes.Buffer
		if _, err := tr.WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("recovered trie diverges from committed-prefix oracle")
		}
	})
}

// journaledSeed encodes seedTrie's base snapshot plus one journal section.
func journaledSeed(f *testing.F, j *Journal) []byte {
	f.Helper()
	var base bytes.Buffer
	if _, err := fuzzSeedTrie().WriteTo(&base); err != nil {
		f.Fatal(err)
	}
	rw := &memFile{b: append([]byte(nil), base.Bytes()...)}
	if _, err := AppendJournalSection(rw, j, JournalStamp{DBChecksum: 7, NumGraphs: 4}); err != nil {
		f.Fatal(err)
	}
	return rw.b
}

// memFile is a minimal in-memory io.ReadWriteSeeker for seed construction.
type memFile struct {
	b   []byte
	off int64
}

func (m *memFile) Read(p []byte) (int, error) {
	if m.off >= int64(len(m.b)) {
		return 0, bytes.ErrTooLarge // unused in practice
	}
	n := copy(p, m.b[m.off:])
	m.off += int64(n)
	return n, nil
}

func (m *memFile) Write(p []byte) (int, error) {
	need := m.off + int64(len(p))
	for int64(len(m.b)) < need {
		m.b = append(m.b, 0)
	}
	copy(m.b[m.off:], p)
	m.off = need
	return len(p), nil
}

func (m *memFile) Truncate(size int64) error {
	for int64(len(m.b)) < size {
		m.b = append(m.b, 0)
	}
	m.b = m.b[:size]
	return nil
}

func (m *memFile) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case 0:
		m.off = offset
	case 1:
		m.off += offset
	case 2:
		m.off = int64(len(m.b)) + offset
	}
	return m.off, nil
}
