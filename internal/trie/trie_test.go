package trie

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/features"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	tr.Insert("p:1.2", Posting{Graph: 3, Count: 2})
	tr.Insert("p:1.2", Posting{Graph: 1, Count: 1})
	tr.Insert("p:1.3", Posting{Graph: 3, Count: 5})

	ps := tr.Get("p:1.2")
	if len(ps) != 2 || ps[0].Graph != 1 || ps[1].Graph != 3 {
		t.Fatalf("postings = %+v", ps)
	}
	if ps[1].Count != 2 {
		t.Errorf("count = %d", ps[1].Count)
	}
	if tr.Get("p:1") != nil {
		t.Error("prefix of a key must not be a key")
	}
	if tr.Get("nope") != nil {
		t.Error("absent key returned postings")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestInsertMergesSameGraph(t *testing.T) {
	tr := New()
	tr.Insert("k", Posting{Graph: 7, Count: 1, Locs: []int32{1, 3}})
	tr.Insert("k", Posting{Graph: 7, Count: 2, Locs: []int32{2, 3}})
	ps := tr.Get("k")
	if len(ps) != 1 {
		t.Fatalf("expected merged posting, got %+v", ps)
	}
	if ps[0].Count != 3 {
		t.Errorf("merged count = %d, want 3", ps[0].Count)
	}
	if !reflect.DeepEqual(ps[0].Locs, []int32{1, 2, 3}) {
		t.Errorf("merged locs = %v", ps[0].Locs)
	}
}

func TestEmptyKeyIsValid(t *testing.T) {
	tr := New()
	tr.Insert("", Posting{Graph: 1, Count: 1})
	if ps := tr.Get(""); len(ps) != 1 {
		t.Errorf("empty key postings = %+v", ps)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestContains(t *testing.T) {
	tr := New()
	tr.Insert("abc", Posting{Graph: 1, Count: 1})
	if !tr.Contains("abc") || tr.Contains("ab") || tr.Contains("abcd") {
		t.Error("Contains misbehaves on prefixes/extensions")
	}
}

func TestWalkLexicographic(t *testing.T) {
	tr := New()
	keys := []string{"b", "a", "ab", "aa", "ba"}
	for i, k := range keys {
		tr.Insert(k, Posting{Graph: int32(i), Count: 1})
	}
	var got []string
	tr.Walk(func(k string, _ []Posting) { got = append(got, k) })
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Walk order = %v, want %v", got, want)
	}
}

func TestRemoveGraph(t *testing.T) {
	tr := New()
	tr.Insert("x", Posting{Graph: 1, Count: 1})
	tr.Insert("x", Posting{Graph: 2, Count: 1})
	tr.Insert("y", Posting{Graph: 1, Count: 4})
	tr.RemoveGraph(1)
	if ps := tr.Get("x"); len(ps) != 1 || ps[0].Graph != 2 {
		t.Errorf("x postings after removal = %+v", ps)
	}
	if ps := tr.Get("y"); len(ps) != 0 {
		t.Errorf("y postings after removal = %+v", ps)
	}
}

func TestContainsAfterRemoveGraph(t *testing.T) {
	// Regression: a terminal node whose postings were fully drained by
	// RemoveGraph used to still report the key as present.
	tr := New()
	tr.Insert("p:1.2", Posting{Graph: 1, Count: 2})
	tr.Insert("p:3", Posting{Graph: 1, Count: 1})
	tr.Insert("p:3", Posting{Graph: 2, Count: 1})
	tr.RemoveGraph(1)
	if tr.Contains("p:1.2") {
		t.Error("Contains reports a key whose postings were all removed")
	}
	if !tr.Contains("p:3") {
		t.Error("Contains lost a key that still has postings")
	}
	if ps := tr.Get("p:1.2"); len(ps) != 0 {
		t.Errorf("drained key still has postings: %+v", ps)
	}
	// Re-inserting revives the key.
	tr.Insert("p:1.2", Posting{Graph: 3, Count: 1})
	if !tr.Contains("p:1.2") {
		t.Error("re-inserted key not contained")
	}
}

func TestSharedDictIDLookup(t *testing.T) {
	d := features.NewDict()
	a, b := NewWithDict(d), NewWithDict(d)
	a.Insert("p:1.2", Posting{Graph: 0, Count: 1})
	b.Insert("p:1.2", Posting{Graph: 7, Count: 3})
	b.Insert("p:9", Posting{Graph: 7, Count: 1})
	id, ok := d.Lookup("p:1.2")
	if !ok {
		t.Fatal("shared dict lost the key")
	}
	if ps := a.GetByID(id).Postings(); len(ps) != 1 || ps[0].Graph != 0 {
		t.Errorf("a.GetByID = %+v", ps)
	}
	if ps := b.GetByID(id).Postings(); len(ps) != 1 || ps[0].Graph != 7 {
		t.Errorf("b.GetByID = %+v", ps)
	}
	// a key interned by b but never inserted into a
	id9, _ := d.Lookup("p:9")
	if pl := a.GetByID(id9); pl.Len() != 0 {
		t.Errorf("a holds postings it never saw: %+v", pl.Postings())
	}
	if a.Get("p:9") != nil {
		t.Error("string Get leaked another trie's key")
	}
}

func TestInsertIDMatchesInsert(t *testing.T) {
	d := features.NewDict()
	byStr, byID := NewWithDict(d), NewWithDict(d)
	keys := []string{"p:1", "p:1.2", "p:2.1.2"}
	for i, k := range keys {
		byStr.Insert(k, Posting{Graph: int32(i), Count: int32(i + 1)})
		byID.InsertID(d.Intern(k), Posting{Graph: int32(i), Count: int32(i + 1)})
	}
	var ws, wi []string
	byStr.Walk(func(k string, ps []Posting) { ws = append(ws, fmt.Sprintf("%s=%v", k, ps)) })
	byID.Walk(func(k string, ps []Posting) { wi = append(wi, fmt.Sprintf("%s=%v", k, ps)) })
	if !reflect.DeepEqual(ws, wi) {
		t.Errorf("walks differ:\n%v\n%v", ws, wi)
	}
	if byStr.NodeCount() != byID.NodeCount() {
		t.Errorf("node counts differ: %d vs %d", byStr.NodeCount(), byID.NodeCount())
	}
}

func TestAgainstMapModel(t *testing.T) {
	// trie behaviour must match a reference map[string]map[int32]int32
	f := func(ops []uint8) bool {
		tr := New()
		model := map[string]map[int32]int32{}
		keys := []string{"", "a", "ab", "b", "ba", "p:1.2", "p:1", "t:0(1)"}
		rng := rand.New(rand.NewSource(int64(len(ops))))
		for _, op := range ops {
			k := keys[int(op)%len(keys)]
			g := int32(rng.Intn(4))
			c := int32(1 + rng.Intn(3))
			tr.Insert(k, Posting{Graph: g, Count: c})
			if model[k] == nil {
				model[k] = map[int32]int32{}
			}
			model[k][g] += c
		}
		for _, k := range keys {
			ps := tr.Get(k)
			want := model[k]
			if want == nil {
				if ps != nil {
					return false
				}
				continue
			}
			if len(ps) != len(want) {
				return false
			}
			for _, p := range ps {
				if want[p.Graph] != p.Count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := New()
	before := tr.SizeBytes()
	for i := 0; i < 50; i++ {
		tr.Insert(fmt.Sprintf("key-%d", i), Posting{Graph: int32(i), Count: 1, Locs: []int32{1, 2, 3}})
	}
	if tr.SizeBytes() <= before {
		t.Error("SizeBytes did not grow after inserts")
	}
	if tr.NodeCount() == 0 {
		t.Error("NodeCount is zero after inserts")
	}
}

func TestUnionSorted(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1, 2}, nil, []int32{1, 2}},
		{nil, []int32{3}, []int32{3}},
		{[]int32{1, 3, 5}, []int32{2, 3, 6}, []int32{1, 2, 3, 5, 6}},
		{[]int32{1}, []int32{1}, []int32{1}},
	}
	for i, c := range cases {
		got := unionSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v want %v", i, got, c.want)
				break
			}
		}
	}
}
