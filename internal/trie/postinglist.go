package trie

// PostingList is one feature's postings in container form: the graph-ID
// set lives in a Container, and the two satellite payloads — occurrence
// counts and Grapes vertex locations — live in rank-aligned arrays that
// are elided entirely in the (overwhelmingly common) default case.
//
// Canonical-form invariants, maintained by every edit path:
//
//   - counts == nil ⇔ every count is 1 (the default multiplicity);
//   - locs   == nil ⇔ no member carries locations;
//   - the container kind is kindFor(policy, set) — a pure function of the
//     member set.
//
// Together these make the in-memory representation (and therefore the v3
// snapshot bytes and SizeBytes accounting) a function of the logical
// postings alone, independent of the order of inserts, the number of
// build workers, or how many save→load→mutate cycles produced it.

import "slices"

// PostingList is the container-backed replacement for []Posting. The zero
// value is an empty list. It is a small value type: copy freely, but the
// backing container/slices are shared by copies — mutation requires
// exclusive ownership (build paths) or copy-on-write (Mutation.Apply).
type PostingList struct {
	ids    Container
	counts []int32   // rank-aligned occurrence counts; nil ⇒ all 1
	locs   [][]int32 // rank-aligned location sets; nil ⇒ none
	nruns  int32     // maximal consecutive runs in ids (maintained incrementally)
}

// Len returns the number of postings.
func (pl PostingList) Len() int {
	if pl.ids == nil {
		return 0
	}
	return pl.ids.Len()
}

// IDs returns the graph-ID container (nil when the list is empty).
func (pl PostingList) IDs() Container { return pl.ids }

// NumRuns returns the number of maximal consecutive graph-ID runs.
func (pl PostingList) NumRuns() int { return int(pl.nruns) }

// UniformCounts reports whether every posting has count 1, in O(1).
func (pl PostingList) UniformCounts() bool { return pl.counts == nil }

// HasLocs reports whether any posting carries vertex locations, in O(1).
func (pl PostingList) HasLocs() bool { return pl.locs != nil }

// CountAt returns the occurrence count of the posting at rank i.
func (pl PostingList) CountAt(i int) int32 {
	if pl.counts == nil {
		return 1
	}
	return pl.counts[i]
}

// LocsAt returns the location set of the posting at rank i (shared; do
// not modify).
func (pl PostingList) LocsAt(i int) []int32 {
	if pl.locs == nil {
		return nil
	}
	return pl.locs[i]
}

// Rank returns the rank of graph g and whether it is present.
func (pl PostingList) Rank(g int32) (int, bool) {
	if pl.ids == nil {
		return 0, false
	}
	return pl.ids.Rank(g)
}

// Range visits the graph IDs in ascending order with their ranks.
func (pl PostingList) Range(fn func(i int, g int32) bool) {
	if pl.ids != nil {
		pl.ids.Range(fn)
	}
}

// AppendIDs appends the graph IDs in ascending order.
func (pl PostingList) AppendIDs(dst []int32) []int32 {
	if pl.ids == nil {
		return dst
	}
	return pl.ids.AppendTo(dst)
}

// Postings materialises the list as a fresh []Posting (the legacy flat
// shape). Locs slices are shared with the list, not copied.
func (pl PostingList) Postings() []Posting {
	if pl.ids == nil {
		return nil
	}
	return pl.appendPostings(make([]Posting, 0, pl.ids.Len()))
}

// appendPostings appends the materialised postings to dst.
func (pl PostingList) appendPostings(dst []Posting) []Posting {
	pl.Range(func(i int, g int32) bool {
		dst = append(dst, Posting{Graph: g, Count: pl.CountAt(i), Locs: pl.LocsAt(i)})
		return true
	})
	return dst
}

// SizeBytes approximates the in-memory footprint of the list's backing
// storage (the PostingList header itself is accounted by the map entry).
func (pl PostingList) SizeBytes() int {
	if pl.ids == nil {
		return 0
	}
	sz := pl.ids.SizeBytes()
	if pl.counts != nil {
		sz += 24 + 4*len(pl.counts)
	}
	if pl.locs != nil {
		sz += 24
		for _, ls := range pl.locs {
			sz += 24 + 4*len(ls)
		}
	}
	return sz
}

// sealPostings converts sorted, duplicate-free postings into canonical
// container form under policy. The Graph IDs are copied; Locs slices are
// shared. An empty input seals to the zero PostingList.
func sealPostings(policy ContainerPolicy, ps []Posting) PostingList {
	n := len(ps)
	if n == 0 {
		return PostingList{}
	}
	ids := make([]int32, n)
	uniform, noLocs := true, true
	nruns := 1
	for i, p := range ps {
		ids[i] = p.Graph
		if p.Count != 1 {
			uniform = false
		}
		if len(p.Locs) != 0 {
			noLocs = false
		}
		if i > 0 && p.Graph != ps[i-1].Graph+1 {
			nruns++
		}
	}
	pl := PostingList{nruns: int32(nruns)}
	pl.ids = buildContainer(kindFor(policy, n, ids[0], ids[n-1], nruns), ids)
	if !uniform {
		pl.counts = make([]int32, n)
		for i, p := range ps {
			pl.counts[i] = p.Count
		}
	}
	if !noLocs {
		pl.locs = make([][]int32, n)
		for i, p := range ps {
			pl.locs[i] = p.Locs
		}
	}
	return pl
}

// reencode re-checks the container choice after an in-place edit and
// converts when the set has crossed an encoding threshold.
func (pl *PostingList) reencode(policy ContainerPolicy) {
	want := kindFor(policy, pl.ids.Len(), pl.ids.Min(), pl.ids.Max(), int(pl.nruns))
	if want == pl.ids.Kind() {
		return
	}
	pl.ids = buildContainer(want, pl.ids.AppendTo(make([]int32, 0, pl.ids.Len())))
}

// add merges posting p into the list (same semantics as the legacy sorted
// []Posting insert: counts of an existing graph accumulate, locations
// union). Requires exclusive ownership of the list's backing storage.
func (pl *PostingList) add(policy ContainerPolicy, p Posting) {
	if pl.ids == nil {
		*pl = sealPostings(policy, []Posting{{Graph: p.Graph, Count: p.Count, Locs: append([]int32(nil), p.Locs...)}})
		return
	}
	r, ok := pl.ids.Rank(p.Graph)
	if ok {
		// Existing member: accumulate count, union locations.
		if pl.counts == nil {
			pl.counts = ones(pl.ids.Len())
		}
		pl.counts[r] += p.Count
		if pl.counts[r] == 1 {
			pl.normalizeCounts()
		}
		if len(p.Locs) > 0 {
			if pl.locs == nil {
				pl.locs = make([][]int32, pl.ids.Len())
			}
			pl.locs[r] = unionSorted(pl.locs[r], p.Locs)
		}
		return
	}
	// Structural insert at rank r: maintain the run count from the
	// neighbours, then extend the container in place.
	joins := 0
	if p.Graph > -1<<31 && pl.ids.Contains(p.Graph-1) {
		joins++
	}
	if p.Graph < 1<<31-1 && pl.ids.Contains(p.Graph+1) {
		joins++
	}
	pl.nruns += int32(1 - joins)
	switch c := pl.ids.(type) {
	case *ArrayContainer:
		c.insertAt(r, p.Graph)
	case *BitmapContainer:
		c.set(p.Graph)
	case *RunContainer:
		c.insert(p.Graph)
	}
	if pl.counts != nil {
		pl.counts = slices.Insert(pl.counts, r, p.Count)
	} else if p.Count != 1 {
		pl.counts = slices.Insert(ones(pl.ids.Len()-1), r, p.Count)
	}
	if pl.locs != nil {
		pl.locs = slices.Insert(pl.locs, r, append([]int32(nil), p.Locs...))
	} else if len(p.Locs) > 0 {
		pl.locs = slices.Insert(make([][]int32, pl.ids.Len()-1), r, append([]int32(nil), p.Locs...))
	}
	pl.reencode(policy)
}

// remove deletes graph g from the list. It reports whether g was present
// and whether the list drained to empty. Requires exclusive ownership.
func (pl *PostingList) remove(policy ContainerPolicy, g int32) (removed, drained bool) {
	if pl.ids == nil {
		return false, false
	}
	r, ok := pl.ids.Rank(g)
	if !ok {
		return false, false
	}
	if pl.ids.Len() == 1 {
		*pl = PostingList{}
		return true, true
	}
	left := g > -1<<31 && pl.ids.Contains(g-1)
	right := g < 1<<31-1 && pl.ids.Contains(g+1)
	switch {
	case left && right:
		pl.nruns++
	case !left && !right:
		pl.nruns--
	}
	switch c := pl.ids.(type) {
	case *ArrayContainer:
		c.removeAt(r)
	case *BitmapContainer:
		c.clear(g)
	case *RunContainer:
		c.remove(g)
	}
	if pl.counts != nil {
		hot := pl.counts[r] != 1
		pl.counts = slices.Delete(pl.counts, r, r+1)
		if hot {
			pl.normalizeCounts()
		}
	}
	if pl.locs != nil {
		hot := len(pl.locs[r]) != 0
		pl.locs = slices.Delete(pl.locs, r, r+1)
		if hot {
			pl.normalizeLocs()
		}
	}
	pl.reencode(policy)
	return true, false
}

// normalizeCounts restores the counts-nil-iff-all-1 canonical invariant
// after an edit that may have returned every count to 1.
func (pl *PostingList) normalizeCounts() {
	for _, c := range pl.counts {
		if c != 1 {
			return
		}
	}
	pl.counts = nil
}

// normalizeLocs restores the locs-nil-iff-none canonical invariant after
// an edit that may have dropped the last located posting.
func (pl *PostingList) normalizeLocs() {
	for _, ls := range pl.locs {
		if len(ls) != 0 {
			return
		}
	}
	pl.locs = nil
}

// ones returns a fresh all-1 count slice.
func ones(n int) []int32 {
	c := make([]int32, n)
	for i := range c {
		c[i] = 1
	}
	return c
}
