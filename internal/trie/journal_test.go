package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/features"
)

// TestJournalReplayDifferential drives a mutation sequence, persisting each
// batch as an O(delta) journal section appended to one snapshot file, and
// pins the reloaded trie to the live mutated one after every append.
func TestJournalReplayDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + shards)))
			table := map[int32][]GraphFeature{}
			cur := NewSharded(features.NewDict(), shards)
			next := int32(0)

			mut := cur.NewMutation()
			for i := 0; i < 10; i++ {
				fs := synthFeats(rng, 14)
				table[next] = fs
				mut.AppendGraph(next, fs)
				next++
			}
			cur = mut.Apply()

			path := filepath.Join(t.TempDir(), "base.trie")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cur.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			for step := 0; step < 12; step++ {
				mut := cur.NewMutation()
				if rng.Intn(3) > 0 || len(table) < 2 {
					fs := synthFeats(rng, 14)
					table[next] = fs
					mut.AppendGraph(next, fs)
					next++
				} else {
					p := int32(rng.Intn(int(next)))
					last := next - 1
					mut.RemoveGraph(p, last, keysOf(table[p]), table[last])
					if p != last {
						table[p] = table[last]
					}
					delete(table, last)
					next--
				}
				var j Journal
				mut.RecordTo(&j)
				cur = mut.Apply()

				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckJournalable(f); err != nil {
					t.Fatal(err)
				}
				stamp := JournalStamp{DBChecksum: uint64(step + 1), NumGraphs: int(next)}
				if _, err := AppendJournalSection(f, &j, stamp); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				back := NewSharded(features.NewDict(), shards)
				if _, err := back.ReadFrom(bytes.NewReader(data)); err != nil {
					t.Fatalf("step %d: reloading journaled snapshot: %v", step, err)
				}
				if got, want := dumpState(back), dumpState(cur); got != want {
					t.Fatalf("step %d: journal replay diverges from live mutation\ngot:\n%s\nwant:\n%s", step, got, want)
				}
				if got, want := back.LiveDictSizeBytes(), cur.LiveDictSizeBytes(); got != want {
					t.Fatalf("step %d: reloaded live dict bytes %d != live %d", step, got, want)
				}
				st := back.JournalStamp()
				if st == nil || *st != stamp {
					t.Fatalf("step %d: JournalStamp = %v, want %v", step, st, stamp)
				}
			}

			// The snapshot survives a re-save (journals folded into a fresh
			// compact base with no sections).
			var buf bytes.Buffer
			if _, err := cur.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			flat := NewSharded(features.NewDict(), shards)
			if _, err := flat.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if got, want := dumpState(flat), dumpState(cur); got != want {
				t.Fatal("compacted re-save diverges from live state")
			}
			if flat.JournalStamp() != nil {
				t.Error("fresh full snapshot unexpectedly carries a journal stamp")
			}
		})
	}
}

// TestJournalCorruption: a torn or bit-flipped journal section must fail
// a strict load with an error — and under the default recovery mode load
// the committed prefix with a TailRecovery report, never a panic and
// never a half-applied delta.
func TestJournalCorruption(t *testing.T) {
	tr := NewSharded(features.NewDict(), 2)
	mut := tr.NewMutation()
	mut.AppendGraph(0, []GraphFeature{{Key: "ab", Count: 1}, {Key: "cd", Count: 2, Locs: []int32{1, 4}}})
	tr = mut.Apply()

	var base bytes.Buffer
	if _, err := tr.WriteTo(&base); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.trie")
	if err := os.WriteFile(path, base.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mut2 := tr.NewMutation()
	mut2.AppendGraph(1, []GraphFeature{{Key: "ab", Count: 3}})
	var j Journal
	mut2.RecordTo(&j)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendJournalSection(f, &j, JournalStamp{DBChecksum: 9, NumGraphs: 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	preAppend, postAppend := dumpState(tr), dumpState(mut2.Apply())

	// check: data is a corruption of the journaled snapshot. Strict load
	// must fail; the default load must salvage wantState (pre- or
	// post-append, depending on whether the journal section itself
	// survived) and report the torn tail.
	check := func(name string, data []byte, wantState string, wantDropped int) {
		t.Run(name, func(t *testing.T) {
			strict := NewSharded(features.NewDict(), 2)
			if _, rec, err := strict.ReadFromOptions(bytes.NewReader(data), LoadOptions{Strict: true}); err == nil || rec != nil {
				t.Errorf("strict load of corrupt snapshot: err=%v rec=%+v", err, rec)
			}
			back := NewSharded(features.NewDict(), 2)
			n, rec, err := back.ReadFromOptions(bytes.NewReader(data), LoadOptions{})
			if err != nil {
				t.Fatalf("tail recovery failed: %v", err)
			}
			if rec == nil || back.TailRecovery() != rec {
				t.Fatalf("torn tail loaded without a recovery report (rec=%+v)", rec)
			}
			if n != int64(len(data)) {
				t.Errorf("consumed %d bytes of %d", n, len(data))
			}
			if got := dumpState(back); got != wantState {
				t.Errorf("recovered state diverges:\n got %s\nwant %s", got, wantState)
			}
			if rec.DroppedOps != wantDropped {
				t.Errorf("DroppedOps = %d, want %d", rec.DroppedOps, wantDropped)
			}
			if rec.CommittedBytes+rec.DiscardedBytes != int64(len(data)) {
				t.Errorf("committed %d + discarded %d ≠ %d bytes",
					rec.CommittedBytes, rec.DiscardedBytes, len(data))
			}

			// Committed-prefix oracle: the prefix plus a terminator is a
			// well-formed snapshot holding exactly the recovered state.
			prefix := append(append([]byte(nil), data[:rec.CommittedBytes]...), sectionEnd)
			clean := NewSharded(features.NewDict(), 2)
			if _, rec2, err := clean.ReadFromOptions(bytes.NewReader(prefix), LoadOptions{Strict: true}); err != nil || rec2 != nil {
				t.Fatalf("committed prefix does not load strictly: err=%v rec=%+v", err, rec2)
			}
			if got, want := dumpState(clean), dumpState(back); got != want {
				t.Errorf("committed prefix state diverges from recovered state")
			}

			// RepairSnapshotTail makes the file itself well-formed again.
			mf := &memFile{b: append([]byte(nil), data...)}
			if err := RepairSnapshotTail(mf, rec); err != nil {
				t.Fatal(err)
			}
			repaired := NewSharded(features.NewDict(), 2)
			if _, rec3, err := repaired.ReadFromOptions(bytes.NewReader(mf.b), LoadOptions{Strict: true}); err != nil || rec3 != nil {
				t.Fatalf("repaired snapshot does not load strictly: err=%v rec=%+v", err, rec3)
			}
			if got, want := dumpState(repaired), dumpState(back); got != want {
				t.Errorf("repaired state diverges from recovered state")
			}
		})
	}
	// A complete, CRC-valid journal section counts as committed even when
	// the crash ate the trailing terminator — the delta is fully present.
	check("truncated-terminator", good[:len(good)-1], postAppend, 0)
	check("truncated-journal", good[:len(good)-4], preAppend, 1)
	flip := append([]byte(nil), good...)
	flip[len(flip)-3] ^= 0x40 // inside the journal body → CRC mismatch
	check("bitflip", flip, preAppend, 1)
	// Corruption in the *base* (a segment byte) still fails hard even in
	// recovery mode: only the journal tail is salvageable.
	seg := append([]byte(nil), good...)
	seg[len(base.Bytes())/2] ^= 0x10
	broken := NewSharded(features.NewDict(), 2)
	if _, rec, err := broken.ReadFromOptions(bytes.NewReader(seg), LoadOptions{}); err == nil {
		t.Errorf("base corruption recovered (rec=%+v); want hard failure", rec)
	}
}
