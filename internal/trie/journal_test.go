package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/features"
)

// TestJournalReplayDifferential drives a mutation sequence, persisting each
// batch as an O(delta) journal section appended to one snapshot file, and
// pins the reloaded trie to the live mutated one after every append.
func TestJournalReplayDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + shards)))
			table := map[int32][]GraphFeature{}
			cur := NewSharded(features.NewDict(), shards)
			next := int32(0)

			mut := cur.NewMutation()
			for i := 0; i < 10; i++ {
				fs := synthFeats(rng, 14)
				table[next] = fs
				mut.AppendGraph(next, fs)
				next++
			}
			cur = mut.Apply()

			path := filepath.Join(t.TempDir(), "base.trie")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cur.WriteTo(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			for step := 0; step < 12; step++ {
				mut := cur.NewMutation()
				if rng.Intn(3) > 0 || len(table) < 2 {
					fs := synthFeats(rng, 14)
					table[next] = fs
					mut.AppendGraph(next, fs)
					next++
				} else {
					p := int32(rng.Intn(int(next)))
					last := next - 1
					mut.RemoveGraph(p, last, keysOf(table[p]), table[last])
					if p != last {
						table[p] = table[last]
					}
					delete(table, last)
					next--
				}
				var j Journal
				mut.RecordTo(&j)
				cur = mut.Apply()

				f, err := os.OpenFile(path, os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckJournalable(f); err != nil {
					t.Fatal(err)
				}
				stamp := JournalStamp{DBChecksum: uint64(step + 1), NumGraphs: int(next)}
				if _, err := AppendJournalSection(f, &j, stamp); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				back := NewSharded(features.NewDict(), shards)
				if _, err := back.ReadFrom(bytes.NewReader(data)); err != nil {
					t.Fatalf("step %d: reloading journaled snapshot: %v", step, err)
				}
				if got, want := dumpState(back), dumpState(cur); got != want {
					t.Fatalf("step %d: journal replay diverges from live mutation\ngot:\n%s\nwant:\n%s", step, got, want)
				}
				if got, want := back.LiveDictSizeBytes(), cur.LiveDictSizeBytes(); got != want {
					t.Fatalf("step %d: reloaded live dict bytes %d != live %d", step, got, want)
				}
				st := back.JournalStamp()
				if st == nil || *st != stamp {
					t.Fatalf("step %d: JournalStamp = %v, want %v", step, st, stamp)
				}
			}

			// The snapshot survives a re-save (journals folded into a fresh
			// compact base with no sections).
			var buf bytes.Buffer
			if _, err := cur.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			flat := NewSharded(features.NewDict(), shards)
			if _, err := flat.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if got, want := dumpState(flat), dumpState(cur); got != want {
				t.Fatal("compacted re-save diverges from live state")
			}
			if flat.JournalStamp() != nil {
				t.Error("fresh full snapshot unexpectedly carries a journal stamp")
			}
		})
	}
}

// TestJournalCorruption: a torn or bit-flipped journal section must fail
// the load with an error, never a panic.
func TestJournalCorruption(t *testing.T) {
	tr := NewSharded(features.NewDict(), 2)
	mut := tr.NewMutation()
	mut.AppendGraph(0, []GraphFeature{{Key: "ab", Count: 1}, {Key: "cd", Count: 2, Locs: []int32{1, 4}}})
	tr = mut.Apply()

	var base bytes.Buffer
	if _, err := tr.WriteTo(&base); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.trie")
	if err := os.WriteFile(path, base.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mut2 := tr.NewMutation()
	mut2.AppendGraph(1, []GraphFeature{{Key: "ab", Count: 3}})
	var j Journal
	mut2.RecordTo(&j)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendJournalSection(f, &j, JournalStamp{DBChecksum: 9, NumGraphs: 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Run(name, func(t *testing.T) {
			back := NewSharded(features.NewDict(), 2)
			if _, err := back.ReadFrom(bytes.NewReader(data)); err == nil {
				t.Errorf("%s: corrupt snapshot loaded without error", name)
			}
		})
	}
	check("truncated-terminator", good[:len(good)-1])
	check("truncated-journal", good[:len(good)-4])
	flip := append([]byte(nil), good...)
	flip[len(flip)-3] ^= 0x40 // inside the journal body → CRC mismatch
	check("bitflip", flip)
}
