package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/features"
)

// TestDenseSnapshotShrinksTwofold is the compression gate from the
// container redesign: on a dense synthetic dataset the v3 snapshot written
// with adaptive containers must be at least 2× smaller than the same data
// written as flat arrays (the pre-container baseline, still reachable via
// ArrayOnlyContainers). Dense scatter persists as bitmap words (~1 bit per
// graph vs ≥1 varint byte per graph) and clustered blocks as run deltas
// (~2 bytes per run vs ~1 byte per member), so the 2× floor holds with a
// wide margin by construction — the test pins it against regressions in
// the writer's container selection.
func TestDenseSnapshotShrinksTwofold(t *testing.T) {
	const nFeats, nGraphs = 24, 4096
	build := func(policy ContainerPolicy) *Trie {
		tr := NewSharded(features.NewDict(), 4)
		tr.SetContainerPolicy(policy)
		r := rand.New(rand.NewSource(9))
		for f := 0; f < nFeats; f++ {
			key := fmt.Sprintf("dense:%d", f)
			if f%3 == 2 {
				// Clustered membership: long runs with short gaps.
				for g := 0; g < nGraphs; {
					for j, n := 0, 200+r.Intn(200); j < n && g < nGraphs; j++ {
						tr.Insert(key, Posting{Graph: int32(g), Count: 1})
						g++
					}
					g += 1 + r.Intn(4)
				}
			} else {
				// Dense uniform scatter: bitmap territory.
				for g := 0; g < nGraphs; g++ {
					if r.Intn(10) != 0 {
						tr.Insert(key, Posting{Graph: int32(g), Count: 1})
					}
				}
			}
		}
		return tr
	}

	var adaptive, flat bytes.Buffer
	if _, err := build(AdaptiveContainers).WriteTo(&adaptive); err != nil {
		t.Fatal(err)
	}
	if _, err := build(ArrayOnlyContainers).WriteTo(&flat); err != nil {
		t.Fatal(err)
	}
	if adaptive.Len() == 0 || flat.Len() == 0 {
		t.Fatal("premise: empty snapshot")
	}
	ratio := float64(flat.Len()) / float64(adaptive.Len())
	t.Logf("snapshot bytes: adaptive=%d flat=%d shrink=%.2fx", adaptive.Len(), flat.Len(), ratio)
	if ratio < 2.0 {
		t.Fatalf("dense snapshot shrink %.2fx < 2x (adaptive=%dB, flat arrays=%dB)",
			ratio, adaptive.Len(), flat.Len())
	}

	// The flat snapshot must load back into the adaptive-default reader with
	// identical content — the shrink is pure encoding, not data loss.
	got := NewSharded(features.NewDict(), 4)
	if _, err := got.ReadFrom(bytes.NewReader(flat.Bytes())); err != nil {
		t.Fatal(err)
	}
	var resaved bytes.Buffer
	if _, err := got.WriteTo(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), adaptive.Bytes()) {
		t.Error("flat snapshot did not re-save to the canonical adaptive bytes")
	}
}
