package trie

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/features"
)

func benchTrie(nKeys, nGraphs int) (*Trie, []string, []features.FeatureID) {
	tr := New()
	rng := rand.New(rand.NewSource(11))
	keys := make([]string, nKeys)
	ids := make([]features.FeatureID, nKeys)
	for i := range keys {
		k := "p:" + strconv.Itoa(rng.Intn(9)) + "." + strconv.Itoa(rng.Intn(9)) +
			"." + strconv.Itoa(rng.Intn(9)) + "." + strconv.Itoa(i)
		keys[i] = k
		for g := 0; g < 1+rng.Intn(nGraphs); g++ {
			tr.Insert(k, Posting{Graph: int32(g), Count: int32(1 + rng.Intn(4))})
		}
		ids[i], _ = tr.Dict().Lookup(k)
	}
	return tr, keys, ids
}

// BenchmarkGetString probes the trie by canonical string (dictionary hash
// per probe) — the seed lookup path.
func BenchmarkGetString(b *testing.B) {
	tr, keys, _ := benchTrie(2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Get(keys[i%len(keys)]) == nil {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkGetByID probes by interned FeatureID — the hot lookup path.
func BenchmarkGetByID(b *testing.B) {
	tr, _, ids := benchTrie(2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.GetByID(ids[i%len(ids)]).Len() == 0 {
			b.Fatal("missing id")
		}
	}
}
