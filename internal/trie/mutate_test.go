package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/features"
)

// dumpState renders the observable state of a trie: node count, key count and
// every (key, postings) pair in Walk order — the differential identity the
// mutation and journal paths are pinned to.
func dumpState(t *Trie) string {
	out := fmt.Sprintf("nodes=%d len=%d\n", t.NodeCount(), t.Len())
	t.Walk(func(k string, ps []Posting) {
		out += fmt.Sprintf("%q ->", k)
		for _, p := range ps {
			out += fmt.Sprintf(" {g=%d c=%d locs=%v}", p.Graph, p.Count, p.Locs)
		}
		out += "\n"
	})
	return out
}

// featSet is a tiny synthetic feature family for mutation tests.
func synthFeats(rng *rand.Rand, nKeys int) []GraphFeature {
	n := 1 + rng.Intn(4)
	fs := make([]GraphFeature, 0, n)
	seen := map[string]bool{}
	for len(fs) < n {
		k := fmt.Sprintf("f%02d", rng.Intn(nKeys))
		if seen[k] {
			continue
		}
		seen[k] = true
		var locs []int32
		for v := int32(0); v < 6; v++ {
			if rng.Intn(3) == 0 {
				locs = append(locs, v)
			}
		}
		fs = append(fs, GraphFeature{Key: k, Count: int32(1 + rng.Intn(3)), Locs: locs})
	}
	return fs
}

// applyRef mirrors a graph->features table into a fresh sequentially built
// trie — the from-scratch reference the mutated trie must match.
func buildRef(d *features.Dict, shards int, table map[int32][]GraphFeature) *Trie {
	tr := NewSharded(d, shards)
	ids := make([]int32, 0, len(table))
	for id := range table {
		ids = append(ids, id)
	}
	sortIDsForTest(ids)
	for _, id := range ids {
		for _, f := range table[id] {
			tr.Insert(f.Key, Posting{Graph: id, Count: f.Count, Locs: f.Locs})
		}
	}
	return tr
}

func sortIDsForTest(ids []int32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TestMutationDifferential drives random append/remove batches through the
// COW mutation path and pins the result, at every step, to a from-scratch
// build over the surviving table — including Walk order, NodeCount, Len,
// SizeBytes, live dictionary accounting and the persisted byte stream.
func TestMutationDifferential(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + shards)))
			table := map[int32][]GraphFeature{}
			cur := NewSharded(features.NewDict(), shards)
			next := int32(0)

			// Seed with an initial batch.
			mut := cur.NewMutation()
			for i := 0; i < 8; i++ {
				fs := synthFeats(rng, 12)
				table[next] = fs
				mut.AppendGraph(next, fs)
				next++
			}
			cur = mut.Apply()

			for step := 0; step < 30; step++ {
				mut := cur.NewMutation()
				if rng.Intn(3) > 0 || len(table) < 2 {
					for i := 0; i < 1+rng.Intn(3); i++ {
						fs := synthFeats(rng, 12)
						table[next] = fs
						mut.AppendGraph(next, fs)
						next++
					}
				} else {
					// swap-remove a random position
					p := int32(rng.Intn(int(next)))
					for table[p] == nil {
						p = int32(rng.Intn(int(next)))
					}
					last := next - 1
					mut.RemoveGraph(p, last, keysOf(table[p]), table[last])
					if p != last {
						table[p] = table[last]
					} else {
						delete(table, p)
					}
					delete(table, last)
					next--
					// re-key table: positions are dense [0, next)
					if p != last {
						// nothing further: table[p] now holds old last
					}
				}
				prev := cur
				prevDump := dumpState(prev)
				cur = mut.Apply()
				if got := dumpState(prev); got != prevDump {
					t.Fatalf("step %d: base trie mutated by Apply", step)
				}

				ref := buildRef(features.NewDict(), shards, table)
				if got, want := dumpState(cur), dumpState(ref); got != want {
					t.Fatalf("step %d: mutated trie diverges from fresh build\ngot:\n%s\nwant:\n%s", step, got, want)
				}
				if got, want := cur.SizeBytes(), ref.SizeBytes(); got != want {
					t.Fatalf("step %d: SizeBytes %d != fresh %d", step, got, want)
				}
				if got, want := cur.LiveDictSizeBytes(), ref.dict.SizeBytes(); got != want {
					t.Fatalf("step %d: LiveDictSizeBytes %d != fresh dict %d", step, got, want)
				}

				// Persisted form must be byte-identical to the fresh build's
				// (compacted dictionary hides the mutation history) whenever
				// the live dictionary order still matches the fresh interning
				// order; at minimum it must round-trip to the same state.
				var buf bytes.Buffer
				if _, err := cur.WriteTo(&buf); err != nil {
					t.Fatalf("step %d: WriteTo: %v", step, err)
				}
				back := NewSharded(features.NewDict(), shards)
				if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("step %d: ReadFrom: %v", step, err)
				}
				if got, want := dumpState(back), dumpState(cur); got != want {
					t.Fatalf("step %d: persisted round-trip diverges", step)
				}
				if got, want := back.LiveDictSizeBytes(), ref.dict.SizeBytes(); got != want {
					t.Fatalf("step %d: reloaded dict bytes %d != fresh %d", step, got, want)
				}
			}
		})
	}
}

func keysOf(fs []GraphFeature) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Key
	}
	return out
}

// TestRemoveGraphPersistDifferential is the regression for the PR 1
// RemoveGraph fix having no persist-path coverage: after in-place removals,
// Walk, NodeCount, SizeBytes and the persisted byte stream must all agree
// with a trie that never held the removed graph.
func TestRemoveGraphPersistDifferential(t *testing.T) {
	mk := func(withG1 bool) *Trie {
		tr := NewSharded(features.NewDict(), 4)
		tr.Insert("ab", Posting{Graph: 0, Count: 1})
		tr.Insert("abc", Posting{Graph: 0, Count: 2, Locs: []int32{1, 3}})
		if withG1 {
			tr.Insert("abd", Posting{Graph: 1, Count: 1}) // only graph 1: drains on removal
			tr.Insert("ab", Posting{Graph: 1, Count: 3})
			tr.Insert("zz", Posting{Graph: 1, Count: 1, Locs: []int32{0}})
		}
		tr.Insert("b", Posting{Graph: 2, Count: 1})
		return tr
	}
	tr := mk(true)
	tr.RemoveGraph(1)
	ref := mk(false)

	if got, want := dumpState(tr), dumpState(ref); got != want {
		t.Fatalf("after RemoveGraph, trie diverges from never-inserted reference\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got, want := tr.SizeBytes(), ref.SizeBytes(); got != want {
		t.Errorf("SizeBytes after removal = %d, want %d", got, want)
	}
	if tr.Contains("abd") || tr.Contains("zz") {
		t.Error("drained keys still reported as contained")
	}
	if got, want := tr.LiveDictSizeBytes(), ref.dict.SizeBytes(); got != want {
		t.Errorf("LiveDictSizeBytes after removal = %d, want %d (dead keys must not count)", got, want)
	}

	// Persist path: the snapshot must decode to the same observable state,
	// with the dictionary compacted to the live vocabulary.
	var buf, refBuf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.WriteTo(&refBuf); err != nil {
		t.Fatal(err)
	}
	back := NewSharded(features.NewDict(), 4)
	if _, err := back.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := dumpState(back), dumpState(ref); got != want {
		t.Fatalf("persisted removal state diverges from reference")
	}
	if back.Dict().Len() != ref.Dict().Len() {
		t.Errorf("reloaded dictionary holds %d keys, want %d (snapshot must compact dead vocabulary)",
			back.Dict().Len(), ref.Dict().Len())
	}

	// Resurrection: re-inserting a drained key must bring it fully back.
	tr.Insert("abd", Posting{Graph: 0, Count: 5})
	if !tr.Contains("abd") {
		t.Error("resurrected key not contained")
	}
	if tr.DeadLen() != 1 { // "zz" stays dead
		t.Errorf("DeadLen = %d after resurrection, want 1", tr.DeadLen())
	}
}
