package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/features"
)

// randomTrie builds a trie with nKeys random features over nGraphs graphs,
// optionally with location lists, deterministically from seed.
func randomTrie(t *testing.T, shards, nKeys, nGraphs int, locs bool, seed int64) *Trie {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := NewSharded(features.NewDict(), shards)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("p:%d.%d", rng.Intn(50), rng.Intn(50))
		for g := 0; g < nGraphs; g++ {
			if rng.Intn(3) != 0 {
				continue
			}
			p := Posting{Graph: int32(g), Count: int32(1 + rng.Intn(5))}
			if locs {
				for v := int32(0); v < 20; v += int32(1 + rng.Intn(6)) {
					p.Locs = append(p.Locs, v)
				}
			}
			tr.Insert(key, p)
		}
	}
	return tr
}

// dump flattens a trie into a comparable structure: Walk order, keys,
// postings (graphs, counts, locations).
func dump(tr *Trie) []string {
	var out []string
	tr.Walk(func(key string, posts []Posting) {
		out = append(out, fmt.Sprintf("%s=%v", key, posts))
	})
	return out
}

func TestTrieRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		for _, locs := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("shards=%d/locs=%v/workers=%d", shards, locs, workers)
				t.Run(name, func(t *testing.T) {
					tr := randomTrie(t, shards, 200, 30, locs, 42)
					var buf bytes.Buffer
					n, err := tr.WriteTo(&buf)
					if err != nil {
						t.Fatal(err)
					}
					if n != int64(buf.Len()) {
						t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
					}

					got := NewSharded(features.NewDict(), 1) // layout is overwritten by the snapshot
					rn, err := got.ReadFromWorkers(bytes.NewReader(buf.Bytes()), workers)
					if err != nil {
						t.Fatal(err)
					}
					if rn != n {
						t.Errorf("ReadFrom consumed %d bytes, snapshot is %d", rn, n)
					}
					if got.ShardCount() != tr.ShardCount() {
						t.Errorf("loaded shard count %d, saved %d", got.ShardCount(), tr.ShardCount())
					}
					if got.Len() != tr.Len() || got.NodeCount() != tr.NodeCount() || got.SizeBytes() != tr.SizeBytes() {
						t.Errorf("loaded Len/NodeCount/SizeBytes = %d/%d/%d, want %d/%d/%d",
							got.Len(), got.NodeCount(), got.SizeBytes(), tr.Len(), tr.NodeCount(), tr.SizeBytes())
					}
					if !reflect.DeepEqual(dump(got), dump(tr)) {
						t.Error("loaded trie contents differ from saved")
					}
					// The dictionary round-trips to identical IDs, so the
					// ID-keyed read path answers identically.
					for _, k := range tr.dict.Keys() {
						id, ok := got.dict.Lookup(k)
						if !ok {
							t.Fatalf("key %q missing after load", k)
						}
						wid, _ := tr.dict.Lookup(k)
						if id != wid {
							t.Fatalf("key %q interned as %d, saved as %d", k, id, wid)
						}
						if !reflect.DeepEqual(got.GetByID(id).Postings(), tr.GetByID(wid).Postings()) {
							t.Fatalf("postings for %q differ after load", k)
						}
					}
				})
			}
		}
	}
}

func TestTrieRoundTripEmpty(t *testing.T) {
	tr := NewSharded(features.NewDict(), 4)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := New()
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.NodeCount() != 0 {
		t.Errorf("empty trie round-tripped to Len=%d NodeCount=%d", got.Len(), got.NodeCount())
	}
}

// Loading into a trie whose dictionary already holds other keys remaps the
// postings to the freshly interned IDs; contents stay identical.
func TestTrieRoundTripRemap(t *testing.T) {
	tr := randomTrie(t, 4, 100, 20, true, 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d := features.NewDict()
	d.Intern("z:pre-existing-0")
	d.Intern("z:pre-existing-1")
	got := NewSharded(d, 4)
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(got), dump(tr)) {
		t.Error("remapped load differs from saved contents")
	}
	// Postings must be reachable through the *new* IDs.
	tr.Walk(func(key string, posts []Posting) {
		id, ok := d.Lookup(key)
		if !ok {
			t.Fatalf("key %q missing from destination dictionary", key)
		}
		if !reflect.DeepEqual(got.GetByID(id).Postings(), posts) {
			t.Fatalf("postings for %q differ under remapped ID", key)
		}
	})
}

func TestTrieReshard(t *testing.T) {
	tr := randomTrie(t, 8, 150, 25, true, 11)
	before := dump(tr)
	size := tr.SizeBytes() - 48*tr.ShardCount() // shard headers scale with K
	for _, k := range []int{1, 2, 16, 64} {
		tr.Reshard(k)
		if tr.ShardCount() != k {
			t.Fatalf("Reshard(%d) left %d shards", k, tr.ShardCount())
		}
		if !reflect.DeepEqual(dump(tr), before) {
			t.Fatalf("Reshard(%d) changed contents", k)
		}
		if got := tr.SizeBytes() - 48*tr.ShardCount(); got != size {
			t.Fatalf("Reshard(%d) changed postings size: %d != %d", k, got, size)
		}
	}
}

func TestTrieReadFromRejectsCorruption(t *testing.T) {
	tr := randomTrie(t, 2, 50, 10, false, 3)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ok := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":  append([]byte("NOTATRIE"), ok[8:]...),
		"truncated":  ok[:len(ok)/2],
		"bit flip":   flipByte(ok, len(ok)-3), // lands in the last segment body → CRC
		"empty":      {},
		"crc damage": flipByte(ok, len(ok)-len(lastSegment(ok))-2), // flips the stored CRC
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			got := New()
			if _, err := got.ReadFrom(bytes.NewReader(data)); err == nil {
				t.Error("corrupt snapshot loaded without error")
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

// lastSegment is a rough helper for test construction only: returns a tail
// slice no larger than the final segment.
func lastSegment(b []byte) []byte {
	if len(b) < 8 {
		return b
	}
	return b[len(b)-4:]
}

// A version newer than the reader must be rejected with a version error.
func TestTrieReadFromRejectsNewerVersion(t *testing.T) {
	tr := NewSharded(features.NewDict(), 1)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(persistMagic)] = persistVersion + 1 // version byte follows the magic
	got := New()
	if _, err := got.ReadFrom(bytes.NewReader(data)); err == nil {
		t.Error("newer snapshot version loaded without error")
	}
}
