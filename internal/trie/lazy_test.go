package trie

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/features"
)

// snapshotBytes serialises tr, optionally appending one journal section.
func snapshotBytes(t *testing.T, tr *Trie, j *Journal, stamp JournalStamp) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if j == nil {
		return buf.Bytes()
	}
	rw := &memFile{b: append([]byte(nil), buf.Bytes()...)}
	if _, err := AppendJournalSection(rw, j, stamp); err != nil {
		t.Fatal(err)
	}
	return rw.b
}

// journalFor stages a representative mutation batch against keys known to
// exist in tr: one append introducing new features alongside existing
// ones, and one swap-removal that drains at least something.
func journalFor(t *testing.T, tr *Trie, nGraphs int32) *Journal {
	t.Helper()
	keys := tr.Dict().Keys()
	if len(keys) < 4 {
		t.Fatal("journalFor needs a trie with ≥ 4 keys")
	}
	newFeats := []GraphFeature{
		{Key: keys[0], Count: 2, Locs: []int32{1, 5}},
		{Key: "lazy:new.a", Count: 1},
		{Key: keys[3], Count: 3},
		{Key: "lazy:new.b", Count: 4, Locs: []int32{2}},
	}
	mut := tr.NewMutation()
	mut.AppendGraph(nGraphs, newFeats)
	// Swap-removal: graph 0 vacates, the just-appended graph re-homes into
	// position 0. Scrubbing keys[1]/keys[2] exercises drain + dead-set
	// bookkeeping on whichever features only graph 0 populated.
	mut.RemoveGraph(0, nGraphs, []string{keys[1], keys[2], keys[0]}, newFeats)
	var j Journal
	mut.RecordTo(&j)
	return &j
}

func plEqual(a, b PostingList) bool {
	return a.Len() == b.Len() && reflect.DeepEqual(a.Postings(), b.Postings())
}

// eagerLoad is the oracle: a streaming load of the same bytes.
func eagerLoad(t *testing.T, data []byte) (*Trie, int64, *TailRecovery) {
	t.Helper()
	tr := NewSharded(features.NewDict(), 0)
	n, rec, err := tr.ReadFromOptions(bytes.NewReader(data), LoadOptions{})
	if err != nil {
		t.Fatalf("eager oracle load: %v", err)
	}
	return tr, n, rec
}

// TestOpenLazyDifferential is the core lazy-vs-eager equivalence matrix:
// shards × journaled × budget (0 = unbounded, tiny = eviction pressure) ×
// workers. Every probe, every aggregate and the re-Save bytes must agree
// with a streaming load of the same snapshot.
func TestOpenLazyDifferential(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		for _, journaled := range []bool{false, true} {
			for _, budget := range []int64{0, 4 << 10} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("shards=%d/journaled=%v/budget=%d/workers=%d", shards, journaled, budget, workers)
					t.Run(name, func(t *testing.T) {
						base := randomTrie(t, shards, 150, 40, journaled, 7)
						var j *Journal
						if journaled {
							j = journalFor(t, base, 40)
						}
						data := snapshotBytes(t, base, j, JournalStamp{DBChecksum: 11, NumGraphs: 41})
						want, wantN, _ := eagerLoad(t, data)

						got := NewSharded(features.NewDict(), 0)
						n, rec, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{Workers: workers, BudgetBytes: budget})
						if err != nil {
							t.Fatalf("OpenLazy: %v", err)
						}
						if rec != nil {
							t.Fatalf("unexpected tail recovery: %+v", rec)
						}
						if n != wantN {
							t.Errorf("OpenLazy consumed %d bytes, eager consumed %d", n, wantN)
						}
						if got.ShardCount() != want.ShardCount() {
							t.Fatalf("shard count %d, want %d", got.ShardCount(), want.ShardCount())
						}
						if got.Dict().Len() != want.Dict().Len() {
							t.Fatalf("dict len %d, want %d (journal pre-intern diverged)", got.Dict().Len(), want.Dict().Len())
						}
						if st := got.JournalStamp(); journaled && (st == nil || st.DBChecksum != 11) {
							t.Errorf("journal stamp %+v, want DBChecksum 11", st)
						}

						// Probe every interned feature in random order — the
						// fault-in order must not matter.
						ids := rand.New(rand.NewSource(3)).Perm(want.Dict().Len())
						for _, i := range ids {
							id := features.FeatureID(i)
							if !plEqual(got.GetByID(id), want.GetByID(id)) {
								t.Fatalf("GetByID(%d) diverges from eager load", id)
							}
						}
						res := got.Residency()
						if !res.Lazy || res.Materialized {
							t.Fatalf("residency %+v: want lazy, unmaterialised", res)
						}
						if res.TotalShards != shards {
							t.Errorf("TotalShards = %d, want %d", res.TotalShards, shards)
						}
						if budget == 0 && res.Evictions != 0 {
							t.Errorf("unbounded budget evicted %d shards", res.Evictions)
						}
						if budget > 0 && res.ResidentBytes > budget && res.ResidentShards > 1 {
							t.Errorf("resident %d bytes over budget %d with %d shards resident",
								res.ResidentBytes, budget, res.ResidentShards)
						}
						if res.Faults < int64(res.ResidentShards) {
							t.Errorf("faults %d < resident shards %d", res.Faults, res.ResidentShards)
						}

						// Materialise: aggregates and Walk agree with eager.
						if err := got.Materialize(); err != nil {
							t.Fatalf("Materialize: %v", err)
						}
						if got.Residency().ResidentShards != shards {
							t.Errorf("materialised residency %+v: want all %d shards resident", got.Residency(), shards)
						}
						if got.Len() != want.Len() || got.NodeCount() != want.NodeCount() ||
							got.SizeBytes() != want.SizeBytes() || got.DeadLen() != want.DeadLen() {
							t.Errorf("Len/NodeCount/SizeBytes/DeadLen = %d/%d/%d/%d, want %d/%d/%d/%d",
								got.Len(), got.NodeCount(), got.SizeBytes(), got.DeadLen(),
								want.Len(), want.NodeCount(), want.SizeBytes(), want.DeadLen())
						}
						if !reflect.DeepEqual(dump(got), dump(want)) {
							t.Error("materialised trie contents differ from eager load")
						}

						// Re-save: byte-identical snapshots.
						var gotSave, wantSave bytes.Buffer
						if _, err := got.WriteTo(&gotSave); err != nil {
							t.Fatal(err)
						}
						if _, err := want.WriteTo(&wantSave); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(gotSave.Bytes(), wantSave.Bytes()) {
							t.Error("re-Save bytes differ between lazy and eager loads")
						}
					})
				}
			}
		}
	}
}

// TestOpenLazyEvictionRefault drives a budget small enough that a skewed
// probe stream keeps re-faulting shards; answers must stay correct and
// the counters must show real evictions and refaults.
func TestOpenLazyEvictionRefault(t *testing.T) {
	base := randomTrie(t, 8, 200, 60, true, 13)
	data := snapshotBytes(t, base, nil, JournalStamp{})
	want, _, _ := eagerLoad(t, data)

	// Size the budget at roughly two shards: every round trip over all
	// shards must evict.
	probe := NewSharded(features.NewDict(), 0)
	if _, _, err := probe.OpenLazy(bytes.NewReader(data), LazyOptions{}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < probe.ShardCount(); s++ {
		if err := probe.FaultInShard(s); err != nil {
			t.Fatal(err)
		}
	}
	budget := probe.Residency().ResidentBytes / 4

	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{BudgetBytes: budget}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for pass := 0; pass < 4; pass++ {
		for _, i := range rng.Perm(want.Dict().Len()) {
			id := features.FeatureID(i)
			if !plEqual(got.GetByID(id), want.GetByID(id)) {
				t.Fatalf("pass %d: GetByID(%d) diverges under eviction pressure", pass, id)
			}
		}
	}
	res := got.Residency()
	if res.Evictions == 0 {
		t.Fatalf("no evictions under budget %d: %+v", budget, res)
	}
	if res.Faults <= int64(res.TotalShards) {
		t.Fatalf("no refaults recorded: %+v", res)
	}
	if res.ResidentBytes > budget && res.ResidentShards > 1 {
		t.Fatalf("resident bytes %d over budget %d: %+v", res.ResidentBytes, budget, res)
	}
	// The store must still materialise and re-save identically.
	if err := got.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(got), dump(want)) {
		t.Error("post-eviction materialised contents differ from eager load")
	}
}

// TestOpenLazyOverlayReplayCache: a journaled shard replays its overlay on
// the first fault only — evict/refault cycles re-read and re-verify the
// segment (Faults keeps climbing) but reuse the cached patch, so
// OverlayReplays stays at one per journaled shard and answers, drained
// bookkeeping and re-Save bytes still match an eager load exactly.
func TestOpenLazyOverlayReplayCache(t *testing.T) {
	base := randomTrie(t, 4, 120, 40, true, 83)
	j := journalFor(t, base, 40)
	data := snapshotBytes(t, base, j, JournalStamp{DBChecksum: 19, NumGraphs: 41})
	want, _, _ := eagerLoad(t, data)

	// Size the budget at about half the resident footprint so cycling over
	// all shards must evict, and count the journaled shards.
	probe := NewSharded(features.NewDict(), 0)
	if _, _, err := probe.OpenLazy(bytes.NewReader(data), LazyOptions{}); err != nil {
		t.Fatal(err)
	}
	journaled := 0
	for _, ops := range probe.lazyLive.Load().overlays {
		if len(ops) > 0 {
			journaled++
		}
	}
	if journaled == 0 {
		t.Fatal("journalFor produced no per-shard overlays; the test is vacuous")
	}
	for s := 0; s < probe.ShardCount(); s++ {
		if err := probe.FaultInShard(s); err != nil {
			t.Fatal(err)
		}
	}
	budget := probe.Residency().ResidentBytes / 2

	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{BudgetBytes: budget}); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 5; pass++ {
		for s := 0; s < got.ShardCount(); s++ {
			if err := got.FaultInShard(s); err != nil {
				t.Fatal(err)
			}
		}
		if replays := got.Residency().OverlayReplays; replays != int64(journaled) {
			t.Fatalf("pass %d: OverlayReplays = %d, want %d (one per journaled shard, refaults must reuse the patch)",
				pass, replays, journaled)
		}
	}
	res := got.Residency()
	if res.Evictions == 0 {
		t.Fatalf("no evictions under budget %d: %+v (refaults never exercised)", budget, res)
	}
	if res.Faults <= int64(res.TotalShards) {
		t.Fatalf("no refaults recorded: %+v", res)
	}

	// Patched refaults must be answer-identical to the replayed first fault
	// (and hence to an eager load), including drained/dead bookkeeping and
	// the re-saved bytes.
	for i := 0; i < want.Dict().Len(); i++ {
		id := features.FeatureID(i)
		if !plEqual(got.GetByID(id), want.GetByID(id)) {
			t.Fatalf("GetByID(%d) diverges after patched refaults", id)
		}
	}
	if err := got.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got.DeadLen() != want.DeadLen() {
		t.Errorf("DeadLen = %d, want %d (cached drained set lost)", got.DeadLen(), want.DeadLen())
	}
	if !reflect.DeepEqual(dump(got), dump(want)) {
		t.Error("materialised contents differ from eager load after patched refaults")
	}
	var gotSave, wantSave bytes.Buffer
	if _, err := got.WriteTo(&gotSave); err != nil {
		t.Fatal(err)
	}
	if _, err := want.WriteTo(&wantSave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSave.Bytes(), wantSave.Bytes()) {
		t.Error("re-Save bytes differ after patched refaults")
	}
}

// TestOpenLazyConcurrent hammers one lazily-opened trie from many
// goroutines under eviction pressure (run with -race): concurrent
// fault-in, concurrent eviction and a racing Materialize must all yield
// eager-identical answers.
func TestOpenLazyConcurrent(t *testing.T) {
	base := randomTrie(t, 8, 150, 50, false, 23)
	data := snapshotBytes(t, base, nil, JournalStamp{})
	want, _, _ := eagerLoad(t, data)
	expect := make([][]Posting, want.Dict().Len())
	for i := range expect {
		expect[i] = want.GetByID(features.FeatureID(i)).Postings()
	}

	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{BudgetBytes: 8 << 10}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				id := rng.Intn(len(expect))
				if got := got.GetByID(features.FeatureID(id)).Postings(); !reflect.DeepEqual(got, expect[id]) {
					errCh <- fmt.Errorf("worker %d: GetByID(%d) diverged", w, id)
					return
				}
			}
		}(w)
	}
	// One goroutine materialises mid-stream: readers must never observe a
	// half-switched store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := got.Materialize(); err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dump(got), dump(want)) {
		t.Error("contents differ after concurrent probes + materialise")
	}
}

// corruptShardBody locates shard s's segment body via a pristine lazy
// open and returns a copy of data with one body byte flipped.
func corruptShardBody(t *testing.T, data []byte, s int) []byte {
	t.Helper()
	probe := NewSharded(features.NewDict(), 0)
	if _, _, err := probe.OpenLazy(bytes.NewReader(data), LazyOptions{}); err != nil {
		t.Fatal(err)
	}
	seg := probe.lazyLive.Load().dir[s]
	if seg.len == 0 {
		t.Fatalf("shard %d has an empty segment body", s)
	}
	bad := append([]byte(nil), data...)
	bad[seg.off+int64(seg.len)/2] ^= 0x40
	return bad
}

// TestOpenLazyCorruptSegmentIsolation: a corrupt segment body must open
// fine (the eager phase never reads bodies), fail with ErrCorrupt at
// fault-in, poison no other shard, and fail Materialize — while the
// healthy shards keep answering correctly before and after that failure.
func TestOpenLazyCorruptSegmentIsolation(t *testing.T) {
	base := randomTrie(t, 8, 150, 40, true, 31)
	data := snapshotBytes(t, base, nil, JournalStamp{})
	want, _, _ := eagerLoad(t, data)
	const badShard = 3
	bad := corruptShardBody(t, data, badShard)

	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(bad), LazyOptions{}); err != nil {
		t.Fatalf("OpenLazy rejected a corrupt body it should defer: %v", err)
	}
	if err := got.FaultInShard(badShard); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("FaultInShard(%d) = %v, want ErrCorrupt", badShard, err)
	}
	for s := 0; s < got.ShardCount(); s++ {
		if s == badShard {
			continue
		}
		if err := got.FaultInShard(s); err != nil {
			t.Fatalf("healthy shard %d poisoned: %v", s, err)
		}
	}
	for i := 0; i < want.Dict().Len(); i++ {
		id := features.FeatureID(i)
		if got.ShardOf(id) == badShard {
			continue
		}
		if !plEqual(got.GetByID(id), want.GetByID(id)) {
			t.Fatalf("healthy shard answer diverged for id %d", id)
		}
	}
	// GetByID on the corrupt shard cannot return an error: it must panic
	// with *ShardFaultError wrapping ErrCorrupt (the engine's containment
	// boundary), never crash with something opaque.
	var badID features.FeatureID = 0
	for i := 0; i < want.Dict().Len(); i++ {
		if got.ShardOf(features.FeatureID(i)) == badShard {
			badID = features.FeatureID(i)
			break
		}
	}
	func() {
		defer func() {
			r := recover()
			sfe, ok := r.(*ShardFaultError)
			if !ok || sfe.Shard != badShard || !errors.Is(sfe, ErrCorrupt) {
				t.Fatalf("GetByID on corrupt shard: recover() = %v, want *ShardFaultError(ErrCorrupt)", r)
			}
		}()
		got.GetByID(badID)
	}()
	if err := got.Materialize(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Materialize = %v, want ErrCorrupt", err)
	}
	// A failed materialise leaves the trie lazy and serviceable.
	if res := got.Residency(); !res.Lazy || res.Materialized {
		t.Fatalf("residency after failed materialise: %+v", res)
	}
	for i := 0; i < want.Dict().Len(); i++ {
		id := features.FeatureID(i)
		if got.ShardOf(id) == badShard {
			continue
		}
		if !plEqual(got.GetByID(id), want.GetByID(id)) {
			t.Fatalf("healthy shard answer diverged after failed materialise (id %d)", id)
		}
	}
}

// TestOpenLazyEvictThenRefaultCRC corrupts a shard's backing bytes *after*
// it was served once and then evicted: the refault must re-verify the CRC
// and surface ErrCorrupt — rot between eviction and re-touch is caught.
func TestOpenLazyEvictThenRefaultCRC(t *testing.T) {
	base := randomTrie(t, 4, 120, 40, false, 41)
	data := append([]byte(nil), snapshotBytes(t, base, nil, JournalStamp{})...)

	probe := NewSharded(features.NewDict(), 0)
	if _, _, err := probe.OpenLazy(bytes.NewReader(data), LazyOptions{}); err != nil {
		t.Fatal(err)
	}
	dir := probe.lazyLive.Load().dir
	if err := probe.FaultInShard(0); err != nil {
		t.Fatal(err)
	}
	oneShard := probe.Residency().ResidentBytes

	// bytes.Reader serves the live slice, so in-place corruption below
	// models on-disk rot under an open mapping.
	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{BudgetBytes: oneShard}); err != nil {
		t.Fatal(err)
	}
	if err := got.FaultInShard(0); err != nil {
		t.Fatal(err) // clean first fault: CRC passes
	}
	if err := got.FaultInShard(1); err != nil {
		t.Fatal(err) // budget of ~one shard: this evicts shard 0
	}
	res := got.Residency()
	if res.Evictions == 0 {
		t.Fatalf("expected shard 0 evicted, residency %+v", res)
	}
	data[dir[0].off+1] ^= 0x01 // rot shard 0's body behind its back
	if err := got.FaultInShard(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("refault after rot = %v, want ErrCorrupt (CRC must be re-verified)", err)
	}
}

// TestOpenLazyTailRecovery: torn journal tails recover with the identical
// report and byte count the streaming loader produces, and strict mode
// rejects them identically.
func TestOpenLazyTailRecovery(t *testing.T) {
	base := randomTrie(t, 4, 80, 30, false, 53)
	j := journalFor(t, base, 30)
	data := snapshotBytes(t, base, j, JournalStamp{DBChecksum: 5, NumGraphs: 31})
	baseLen := len(snapshotBytes(t, base, nil, JournalStamp{}))
	for _, cut := range []int{1, (len(data)-baseLen)/2 + baseLen, len(data) - 1} {
		torn := data[:cut]
		if cut == 1 {
			torn = data[:baseLen+1] // tag byte only
		}
		eager := NewSharded(features.NewDict(), 0)
		en, erec, err := eager.ReadFromOptions(bytes.NewReader(torn), LoadOptions{})
		if err != nil || erec == nil {
			t.Fatalf("cut %d: eager load err=%v rec=%+v", cut, err, erec)
		}
		lazy := NewSharded(features.NewDict(), 0)
		ln, lrec, err := lazy.OpenLazy(bytes.NewReader(torn), LazyOptions{})
		if err != nil || lrec == nil {
			t.Fatalf("cut %d: OpenLazy err=%v rec=%+v", cut, err, lrec)
		}
		if *lrec != *erec || ln != en {
			t.Fatalf("cut %d: recovery diverges: lazy (n=%d, %+v) vs eager (n=%d, %+v)", cut, ln, *lrec, en, *erec)
		}
		if _, _, err := NewSharded(features.NewDict(), 0).OpenLazy(bytes.NewReader(torn), LazyOptions{Strict: true}); err == nil {
			t.Fatalf("cut %d: strict OpenLazy accepted a torn tail", cut)
		}
		if err := lazy.Materialize(); err != nil {
			t.Fatalf("cut %d: materialise recovered state: %v", cut, err)
		}
		if !reflect.DeepEqual(dump(lazy), dump(eager)) {
			t.Fatalf("cut %d: recovered contents diverge", cut)
		}
	}
}

// TestOpenLazyFallbacks: version-1 snapshots and loads into a non-empty
// dictionary cannot be served lazily and must transparently fall back to
// the streaming loader with identical results.
func TestOpenLazyFallbacks(t *testing.T) {
	t.Run("v1 snapshot", func(t *testing.T) {
		data := encodeLegacySnapshot(1, 2, legacyDataset())
		want, _, _ := eagerLoad(t, data)
		got := NewSharded(features.NewDict(), 0)
		n, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Residency().Lazy {
			t.Error("v1 snapshot claims to be lazily loaded")
		}
		if n != int64(len(data)) && n <= 0 {
			t.Errorf("suspicious byte count %d", n)
		}
		if !reflect.DeepEqual(dump(got), dump(want)) {
			t.Error("v1 fallback contents diverge")
		}
	})
	t.Run("non-identity remap", func(t *testing.T) {
		base := randomTrie(t, 4, 60, 20, false, 61)
		data := snapshotBytes(t, base, nil, JournalStamp{})
		want, _, _ := eagerLoad(t, data)
		dict := features.NewDict()
		dict.Intern("pre-existing-key") // forces a non-identity remap
		got := NewSharded(dict, 0)
		if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{}); err != nil {
			t.Fatal(err)
		}
		if got.Residency().Lazy {
			t.Error("non-identity load claims to be lazily loaded")
		}
		if !reflect.DeepEqual(dump(got), dump(want)) {
			t.Error("non-identity fallback contents diverge")
		}
	})
}

// TestOpenLazyMutationMaterializes: staging a mutation against a lazily
// opened trie must force it fully resident first, and the result must
// equal the same mutation applied to an eager load.
func TestOpenLazyMutationMaterializes(t *testing.T) {
	base := randomTrie(t, 4, 80, 30, false, 71)
	data := snapshotBytes(t, base, nil, JournalStamp{})
	want, _, _ := eagerLoad(t, data)
	got := NewSharded(features.NewDict(), 0)
	if _, _, err := got.OpenLazy(bytes.NewReader(data), LazyOptions{BudgetBytes: 4 << 10}); err != nil {
		t.Fatal(err)
	}

	stage := func(tr *Trie) *Trie {
		mut := tr.NewMutation()
		mut.AppendGraph(30, []GraphFeature{{Key: "mut:new", Count: 2}, {Key: tr.Dict().Keys()[0], Count: 1}})
		return mut.Apply()
	}
	gotMut, wantMut := stage(got), stage(want)
	if !got.Residency().Materialized {
		t.Error("Mutation.Apply did not materialise its lazy base")
	}
	if !reflect.DeepEqual(dump(gotMut), dump(wantMut)) {
		t.Error("mutation over lazy base diverges from mutation over eager base")
	}
	var a, b bytes.Buffer
	if _, err := gotMut.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := wantMut.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("post-mutation snapshots differ")
	}
}
