package trie

// Lazy segment loading: serve a snapshot bigger than RAM with
// O(touched-shards) time-to-first-query.
//
// OpenLazy splits the streaming load (ReadFrom) into two phases:
//
//   - The *eager phase* reads only what every query needs up front: the
//     header, the full dictionary (interned in ID order, exactly like
//     ReadFrom), a segment *directory* of {offset, length, CRC} triples —
//     the bodies themselves are skipped, not read — and the complete
//     trailing section stream, with the same torn-tail recovery contract
//     as the streaming loader. Journal ops are decoded and validated in
//     full, their new feature keys interned in the exact order a live
//     replay would intern them, and the ops are projected into per-shard
//     pending overlays.
//   - The *lazy phase* is demand paging: the first GetByID probe into a
//     shard faults its segment in — one positioned read of the body,
//     CRC-checked and decoded only then — and replays the shard's pending
//     overlay through the same Mutation.Apply path live mutation uses, so
//     the resident shard is bit-identical to what the eager loader would
//     have produced. The replay runs once per shard: its outcome is kept
//     as a compact patch (post-replay containers for exactly the features
//     the overlay touches), so a shard that is evicted and re-faulted
//     re-reads and re-verifies its segment but applies the patch instead
//     of replaying the journal again. A byte-budgeted evictor returns the
//     least recently used shards to disk.
//
// Error placement moves with the work: base damage that the streaming
// loader reports at load time (a bad segment CRC, a corrupt posting list)
// surfaces from OpenLazy only when it is structural to the directory
// (truncated bodies, bad lengths) and otherwise at fault-in, wrapped in
// ErrCorrupt, poisoning only the touched shard. Read paths that cannot
// return an error (GetByID) panic with *ShardFaultError; the engine's
// query panic containment converts that into a query error.
//
// Mutation, persistence and whole-store accounting force-materialise
// first (Materialize / ensureMaterialized): every shard is faulted in,
// the byte trie is rebuilt, and the trie becomes an ordinary eager trie —
// a Materialize'd lazy load is observationally identical to ReadFrom,
// including re-Save bytes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/features"
)

// RandomAccessFile is the reader shape the lazy loader needs: positioned
// reads plus a fixed length. persistio.RandomAccess satisfies it, as do
// *io.SectionReader and *bytes.Reader. The caller owns the lifetime: src
// must stay open for as long as the trie serves lazily (safe to release
// once Materialize has returned nil).
type RandomAccessFile interface {
	io.ReaderAt
	Size() int64
}

// LazyOptions configures OpenLazy.
type LazyOptions struct {
	// Workers is the decode parallelism used by Materialize (≤ 0 selects
	// GOMAXPROCS); individual fault-ins are single-shard and unaffected.
	Workers int
	// Strict fails the open on *any* structural damage, including a torn
	// trailing journal section the default mode would recover from.
	Strict bool
	// BudgetBytes bounds the resident shards' decoded footprint; once
	// exceeded, fault-ins evict least-recently-used shards until back
	// under budget (the shard just faulted is never the victim, so the
	// resident set holds at least one shard — a single shard larger than
	// the budget stays resident alone). 0 means unbounded.
	BudgetBytes int64
}

// Residency reports a trie's lazy-loading state. The zero value (Lazy
// false) means the trie was not lazily opened.
type Residency struct {
	Lazy           bool
	TotalShards    int
	ResidentShards int
	ResidentBytes  int64
	BudgetBytes    int64
	Faults         int64 // segment fault-ins, including refaults after eviction
	Evictions      int64
	OverlayReplays int64 // journal-overlay replays (once per journaled shard; refaults reuse the cached patch)
	Materialized   bool
}

// ShardFaultError is the panic payload of a lazy read path that cannot
// return an error (GetByID, Walk postings): faulting the shard's segment
// in failed. Shard is -1 when the failure was a whole-trie materialise.
type ShardFaultError struct {
	Shard int
	Err   error
}

func (e *ShardFaultError) Error() string {
	if e.Shard < 0 {
		return fmt.Sprintf("trie: lazy materialize: %v", e.Err)
	}
	return fmt.Sprintf("trie: shard %d fault-in: %v", e.Shard, e.Err)
}

func (e *ShardFaultError) Unwrap() error { return e.Err }

// lazySeg is one segment-directory entry: where a shard's body lives.
type lazySeg struct {
	off int64 // absolute body offset within src
	len int   // body length
	crc uint32
}

// shardResident is one faulted-in shard. Immutable once published, so an
// in-flight reader holding it across an eviction keeps consistent data.
type shardResident struct {
	posts   map[features.FeatureID]PostingList
	drained []features.FeatureID // features the overlay replay drained (dead)
	bytes   int64                // decoded footprint, SizeBytes accounting
}

// overlayPatch is the cached outcome of a shard's one-time journal-overlay
// replay: the post-replay containers of exactly the features the overlay
// ops touch (set), the touched features the replay drained away (del), and
// the dead-set contribution. Applying it to a freshly decoded segment is
// O(touched features) and lands on the same state the replay produced —
// legal because overlays never change after OpenLazy (mutation goes
// through Materialize first) and the containers are immutable once a
// resident is published. If overlays ever become mutable on a live lazy
// trie, the patch must be dropped wherever they change.
type overlayPatch struct {
	set     map[features.FeatureID]PostingList
	del     []features.FeatureID
	drained []features.FeatureID
}

// lazyShard is one shard's residency slot.
type lazyShard struct {
	val     atomic.Pointer[shardResident] // nil = cold (on disk)
	mu      sync.Mutex                    // serialises fault-in of this shard
	lastUse atomic.Int64                  // clock tick of the last probe
	replay  *overlayPatch                 // guarded by mu: set by the first overlay replay
}

// lazyState is everything OpenLazy defers: the mapped source, the segment
// directory, the per-shard journal overlays, and the residency table.
type lazyState struct {
	src      RandomAccessFile
	dict     *features.Dict
	dir      []lazySeg
	overlays [][]mutOp // per-shard projected journal ops, replay order
	remap    []features.FeatureID
	version  uint64
	policy   ContainerPolicy
	budget   int64
	workers  int
	mask     uint32

	shards []lazyShard
	clock  atomic.Int64
	matMu  sync.Mutex // serialises Materialize

	// mu guards the accounting below and every val.Store (publish and
	// evict), so resident counters never drift from the table.
	mu           sync.Mutex
	resBytes     int64
	resShards    int
	faults       int64
	evictions    int64
	replays      int64 // actual overlay replays (not patch applications)
	sealed       bool // Materialize under way/done: eviction disabled
	materialized bool
}

// raScanner adapts a RandomAccessFile to the byteScanner shape the header
// and section decoders consume, with O(1) Skip over segment bodies — the
// eager phase touches header + directory + sections, never the bodies.
type raScanner struct {
	src  RandomAccessFile
	size int64
	abs  int64 // absolute offset of buf[pos], the next unconsumed byte
	buf  []byte
	pos  int
	err  error // sticky non-EOF read error
}

const raChunk = 64 << 10

func newRAScanner(src RandomAccessFile) *raScanner {
	return &raScanner{src: src, size: src.Size()}
}

// Offset returns the number of bytes consumed (read or skipped) so far.
func (r *raScanner) Offset() int64 { return r.abs }

func (r *raScanner) fill() error {
	if r.pos < len(r.buf) {
		return nil
	}
	if r.err != nil {
		return r.err
	}
	if r.abs >= r.size {
		return io.EOF
	}
	n := min(int64(raChunk), r.size-r.abs)
	if int64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	m, err := r.src.ReadAt(r.buf[:n], r.abs)
	r.buf = r.buf[:m]
	r.pos = 0
	if m > 0 {
		if err != nil && err != io.EOF {
			r.err = err // deliver the bytes we have; fail on the next fill
		}
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	r.err = err
	return err
}

func (r *raScanner) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := r.fill(); err != nil {
		return 0, err
	}
	n := copy(p, r.buf[r.pos:])
	r.pos += n
	r.abs += int64(n)
	return n, nil
}

func (r *raScanner) ReadByte() (byte, error) {
	if err := r.fill(); err != nil {
		return 0, err
	}
	b := r.buf[r.pos]
	r.pos++
	r.abs++
	return b, nil
}

// Skip advances past n bytes without reading them (beyond whatever is
// already buffered). Skipping past EOF is legal; the next read fails.
func (r *raScanner) Skip(n int64) {
	if avail := int64(len(r.buf) - r.pos); n <= avail {
		r.pos += int(n)
	} else {
		r.buf = r.buf[:0]
		r.pos = 0
	}
	r.abs += n
}

// OpenLazy replaces the trie's contents with a snapshot opened for lazy
// segment loading: the eager phase above runs now, segment bodies decode
// on first touch. Contract mirrors ReadFromOptions — same dictionary
// interning, same saved-layout adoption, same torn-tail recovery and byte
// count (the count covers the whole consumed prefix, including a
// discarded tail) — except that base damage *inside* a segment body
// (CRC, posting structure) surfaces at fault-in rather than here.
//
// Two snapshot shapes cannot load lazily and transparently fall back to a
// full eager decode over src: version-1 files (no section stream) and
// loads into a non-empty dictionary (the ID remap breaks the segment ↔
// shard correspondence fault-in relies on). Either way the returned
// values are exactly what ReadFromOptions would report.
//
// The trie adopts the *saved* shard layout; Reshard (which would
// materialise anyway) is the override point. src must remain readable
// until Materialize returns nil.
func (t *Trie) OpenLazy(src RandomAccessFile, opt LazyOptions) (int64, *TailRecovery, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	fullDecode := func() (int64, *TailRecovery, error) {
		return t.ReadFromOptions(io.NewSectionReader(src, 0, src.Size()), LoadOptions{Workers: opt.Workers, Strict: opt.Strict})
	}

	ra := newRAScanner(src)
	var magic [len(persistMagic)]byte
	if _, err := io.ReadFull(ra, magic[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(magic[:]) != persistMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	version, err := binary.ReadUvarint(ra)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if version < 1 || version > persistVersion {
		return 0, nil, fmt.Errorf("trie: snapshot version %d unsupported (this build reads ≤ %d)", version, persistVersion)
	}
	if version < 2 {
		return fullDecode()
	}
	savedShards, err := binary.ReadUvarint(ra)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: reading shard count: %v", ErrCorrupt, err)
	}
	k := int(savedShards)
	if k < 1 || k > maxShards || k&(k-1) != 0 {
		return 0, nil, fmt.Errorf("%w: shard count %d not a power of two in [1, %d]", ErrCorrupt, k, maxShards)
	}

	// Dictionary: intern the saved keys in ID order, exactly like ReadFrom.
	// A non-identity remap (pre-populated dictionary) breaks the segment ↔
	// shard correspondence, so bail out to the streaming loader — interning
	// is idempotent, so the restart re-interns the same keys harmlessly.
	nKeys, err := binary.ReadUvarint(ra)
	if err != nil || nKeys > maxDictLen {
		return 0, nil, fmt.Errorf("%w: dictionary size", ErrCorrupt)
	}
	var kbuf []byte
	for i := uint64(0); i < nKeys; i++ {
		klen, err := binary.ReadUvarint(ra)
		if err != nil || klen > maxKeyLen {
			return 0, nil, fmt.Errorf("%w: dictionary key length", ErrCorrupt)
		}
		if cap(kbuf) < int(klen) {
			kbuf = make([]byte, klen)
		}
		kbuf = kbuf[:klen]
		if _, err := io.ReadFull(ra, kbuf); err != nil {
			return 0, nil, fmt.Errorf("%w: reading dictionary key: %v", ErrCorrupt, err)
		}
		if t.dict.Intern(string(kbuf)) != features.FeatureID(i) {
			return fullDecode()
		}
	}

	// Segment directory: frame fields only, bodies skipped. Bounds-check
	// every body against the source length so base truncation fails here —
	// the streaming loader's strictness — not as a spurious tail recovery.
	dir := make([]lazySeg, k)
	for s := 0; s < k; s++ {
		segLen, err := binary.ReadUvarint(ra)
		if err != nil || segLen > maxSegmentLen {
			return 0, nil, fmt.Errorf("%w: segment %d length", ErrCorrupt, s)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(ra, crcBuf[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: segment %d checksum: %v", ErrCorrupt, s, err)
		}
		off := ra.Offset()
		if off+int64(segLen) > src.Size() {
			return 0, nil, fmt.Errorf("%w: segment %d body: truncated", ErrCorrupt, s)
		}
		dir[s] = lazySeg{off: off, len: int(segLen), crc: binary.LittleEndian.Uint32(crcBuf[:])}
		ra.Skip(int64(segLen))
	}

	// Section stream: identical scan and recovery semantics to readFrom.
	type journalRec struct {
		stamp JournalStamp
		ops   []mutOp
	}
	var journals []journalRec
	var rec *TailRecovery
	committed := ra.Offset()
	fail := func(dropped []byte, cause error) error {
		if opt.Strict {
			return cause
		}
		rec = &TailRecovery{CommittedBytes: committed, DroppedOps: journalOpCount(dropped)}
		return nil
	}
	for rec == nil {
		tag, err := ra.ReadByte()
		if err != nil {
			if err := fail(nil, fmt.Errorf("%w: reading section tag: %v", ErrCorrupt, err)); err != nil {
				return 0, nil, err
			}
			break
		}
		if tag == sectionEnd {
			break
		}
		if tag != sectionJournal {
			if err := fail(nil, fmt.Errorf("%w: unknown section tag %q", ErrCorrupt, tag)); err != nil {
				return 0, nil, err
			}
			break
		}
		body, partial, err := readSectionPartial(ra, "journal")
		if err != nil {
			if err := fail(partial, err); err != nil {
				return 0, nil, err
			}
			break
		}
		stamp, ops, err := decodeJournalBody(body)
		if err != nil {
			if err := fail(body, err); err != nil {
				return 0, nil, err
			}
			break
		}
		journals = append(journals, journalRec{stamp: stamp, ops: ops})
		committed = ra.Offset()
	}
	consumed := ra.Offset()
	if rec != nil {
		// The whole tail beyond the committed prefix is untrustworthy; the
		// streaming loader consumes and discards it, so report the same.
		rec.DiscardedBytes = src.Size() - committed
		consumed = src.Size()
	}

	// Pre-intern the journals' feature keys in the exact order a live
	// replay's Mutation.Apply would intern them (append inserts, then the
	// re-homed inserts of a swap-removal), so journal-new features get the
	// same FeatureIDs the eager loader assigns — which is also what routes
	// them to the right overlay shard.
	for _, j := range journals {
		for _, op := range j.ops {
			if op.kind == opAppend || (op.kind == opRemove && op.swapped != op.graph) {
				for _, f := range op.feats {
					t.dict.Intern(f.Key)
				}
			}
		}
	}
	mask := uint32(k - 1)
	overlays := make([][]mutOp, k)
	splitFeats := func(feats []GraphFeature) map[int][]GraphFeature {
		by := make(map[int][]GraphFeature)
		for _, f := range feats {
			s := int(uint32(t.dict.Intern(f.Key)) & mask)
			by[s] = append(by[s], f)
		}
		return by
	}
	for _, j := range journals {
		for _, op := range j.ops {
			switch op.kind {
			case opAppend:
				for s, fs := range splitFeats(op.feats) {
					overlays[s] = append(overlays[s], mutOp{kind: opAppend, graph: op.graph, swapped: op.graph, feats: fs})
				}
			case opRemove:
				// Per-feature effects are local to the feature's shard, so
				// the op projects exactly: scrub keys and swapped-graph
				// re-homes are filtered by shard, order preserved. Scrub
				// keys absent from the dictionary are no-ops either way.
				var featsBy map[int][]GraphFeature
				if op.swapped != op.graph {
					featsBy = splitFeats(op.feats)
				}
				scrubBy := make(map[int][]string)
				for _, key := range op.scrub {
					if id, ok := t.dict.Lookup(key); ok {
						s := int(uint32(id) & mask)
						scrubBy[s] = append(scrubBy[s], key)
					}
				}
				for s := 0; s < k; s++ {
					fs, sc := featsBy[s], scrubBy[s]
					if len(fs) == 0 && len(sc) == 0 {
						continue
					}
					overlays[s] = append(overlays[s], mutOp{kind: opRemove, graph: op.graph, swapped: op.swapped, feats: fs, scrub: sc})
				}
			}
		}
	}

	remap := make([]features.FeatureID, nKeys)
	for i := range remap {
		remap[i] = features.FeatureID(i)
	}
	ls := &lazyState{
		src:      src,
		dict:     t.dict,
		dir:      dir,
		overlays: overlays,
		remap:    remap,
		version:  version,
		policy:   t.policy,
		budget:   opt.BudgetBytes,
		workers:  opt.Workers,
		mask:     mask,
		shards:   make([]lazyShard, k),
	}

	// Install: placeholder shards (replaced by Materialize), empty byte
	// trie (rebuilt by Materialize — Walk/NodeCount materialise first).
	shards := make([]shard, k)
	for i := range shards {
		shards[i].posts = make(map[features.FeatureID]PostingList)
	}
	t.shards = shards
	t.mask = mask
	t.root = node{}
	t.nodes = 0
	t.dead = nil
	t.recovered = rec
	t.stamp = nil
	if len(journals) > 0 {
		last := journals[len(journals)-1].stamp
		t.stamp = &last
	}
	t.lazyOrigin = ls
	t.lazyLive.Store(ls)
	return consumed, rec, nil
}

// get serves one probe from the resident table, faulting the shard in on
// first touch. Fault failure panics with *ShardFaultError (GetByID cannot
// return an error); the engine's query panic containment converts it.
func (ls *lazyState) get(id features.FeatureID) PostingList {
	s := int(uint32(id) & ls.mask)
	sh := &ls.shards[s]
	sh.lastUse.Store(ls.clock.Add(1))
	if res := sh.val.Load(); res != nil {
		return res.posts[id]
	}
	res, err := ls.faultIn(s)
	if err != nil {
		panic(&ShardFaultError{Shard: s, Err: err})
	}
	return res.posts[id]
}

// faultIn loads shard s's segment: positioned read, CRC check, decode,
// overlay replay, publish. Failure leaves the shard cold and poisons
// nothing else; a later touch retries from scratch.
func (ls *lazyState) faultIn(s int) (*shardResident, error) {
	sh := &ls.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if res := sh.val.Load(); res != nil {
		return res, nil
	}
	seg := ls.dir[s]
	body := make([]byte, seg.len)
	if seg.len > 0 {
		if n, err := ls.src.ReadAt(body, seg.off); n < len(body) {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("trie: shard %d segment read: %w", s, err)
		}
	}
	if crc32.ChecksumIEEE(body) != seg.crc {
		return nil, fmt.Errorf("%w: segment %d CRC mismatch", ErrCorrupt, s)
	}
	posts := make(map[features.FeatureID]PostingList)
	if _, err := decodeSegment(body, posts, ls.remap, ls.mask, uint32(s), ls.version, ls.policy); err != nil {
		return nil, fmt.Errorf("segment %d: %w", s, err)
	}
	res := &shardResident{posts: posts}
	replayed := false
	if ops := ls.overlays[s]; len(ops) > 0 {
		if p := sh.replay; p != nil {
			// Refault after eviction: the overlay was already replayed once
			// and cannot have changed since OpenLazy, so patch the fresh
			// decode instead of replaying the journal ops again.
			for id, pl := range p.set {
				posts[id] = pl
			}
			for _, id := range p.del {
				delete(posts, id)
			}
			res.drained = p.drained
		} else {
			// First fault: replay the shard's pending overlay through the
			// live mutation path against a single-shard scratch trie (mask 0
			// routes every projected feature to its slot 0), so the resident
			// state is bit-identical to an eager load's journal replay. Apply
			// is copy-on-write, so `posts` survives as the pre-replay base
			// the patch below is diffed against.
			tmp := &Trie{dict: ls.dict, shards: []shard{{posts: posts}}, policy: ls.policy}
			nt := (&Mutation{base: tmp, ops: ops}).Apply()
			res.posts = nt.shards[0].posts
			for id := range nt.dead {
				res.drained = append(res.drained, id)
			}
			sh.replay = overlayPatchOf(ls.dict, ops, res)
			replayed = true
		}
	}
	res.bytes = 48 // shard header, same accounting as SizeBytes
	for _, pl := range res.posts {
		res.bytes += 48 + int64(pl.SizeBytes())
	}

	ls.mu.Lock()
	sh.val.Store(res)
	ls.resBytes += res.bytes
	ls.resShards++
	ls.faults++
	if replayed {
		ls.replays++
	}
	if ls.budget > 0 && !ls.sealed {
		ls.evictLocked(s)
	}
	ls.mu.Unlock()
	return res, nil
}

// overlayPatchOf diffs one replay's outcome down to a patch. The touched
// set is read off the ops themselves — append/re-home features were
// pre-interned by OpenLazy and scrub keys were projected only when the
// dictionary knows them, so Lookup resolves everything the replay could
// have edited; a touched feature absent from the post-replay map was
// deleted (drained, or scrubbed before it ever resurrected).
func overlayPatchOf(dict *features.Dict, ops []mutOp, res *shardResident) *overlayPatch {
	touched := make(map[features.FeatureID]struct{})
	note := func(key string) {
		if id, ok := dict.Lookup(key); ok {
			touched[id] = struct{}{}
		}
	}
	for _, op := range ops {
		for _, f := range op.feats {
			note(f.Key)
		}
		for _, key := range op.scrub {
			note(key)
		}
	}
	p := &overlayPatch{set: make(map[features.FeatureID]PostingList, len(touched)), drained: res.drained}
	for id := range touched {
		if pl, ok := res.posts[id]; ok {
			p.set[id] = pl
		} else {
			p.del = append(p.del, id)
		}
	}
	return p
}

// evictLocked (ls.mu held) returns least-recently-used shards to disk
// until the resident footprint is back under budget. The shard just
// faulted (keep, -1 for none) is exempt, so progress is guaranteed and at
// least one shard stays resident. Evicted *shardResident values stay
// valid for readers that already hold them — eviction only unpublishes.
func (ls *lazyState) evictLocked(keep int) {
	for ls.resBytes > ls.budget && ls.resShards > 1 {
		victim, oldest := -1, int64(0)
		for i := range ls.shards {
			if i == keep || ls.shards[i].val.Load() == nil {
				continue
			}
			if u := ls.shards[i].lastUse.Load(); victim == -1 || u < oldest {
				victim, oldest = i, u
			}
		}
		if victim == -1 {
			return
		}
		res := ls.shards[victim].val.Swap(nil)
		ls.resBytes -= res.bytes
		ls.resShards--
		ls.evictions++
	}
}

// FaultInShard forces shard s resident (tests and warm-up). No-op with a
// nil error on an eager or already-materialised trie.
func (t *Trie) FaultInShard(s int) error {
	ls := t.lazyLive.Load()
	if ls == nil {
		return nil
	}
	if s < 0 || s >= len(ls.shards) {
		return fmt.Errorf("trie: shard %d out of range [0, %d)", s, len(ls.shards))
	}
	ls.shards[s].lastUse.Store(ls.clock.Add(1))
	_, err := ls.faultIn(s)
	return err
}

// Materialize faults every shard in, rebuilds the byte trie and converts
// the trie into an ordinary eager one — afterwards it is observationally
// identical to a ReadFrom of the same snapshot (answers, Walk order,
// NodeCount, SizeBytes, re-Save bytes) and src is no longer needed.
// Mutation and persistence call this implicitly. Concurrent readers keep
// being served from the resident table until the switch is published. On
// error (a corrupt or unreadable segment) the trie stays lazy and
// serviceable for every healthy shard. No-op on an eager trie.
func (t *Trie) Materialize() error {
	ls := t.lazyLive.Load()
	if ls == nil {
		return nil
	}
	ls.matMu.Lock()
	defer ls.matMu.Unlock()
	if t.lazyLive.Load() == nil {
		return nil // lost the race to a concurrent Materialize
	}
	ls.mu.Lock()
	ls.sealed = true // no eviction while we pin everything resident
	ls.mu.Unlock()
	k := len(ls.shards)
	residents := make([]*shardResident, k)
	errs := make([]error, k)
	ParallelFor(k, ls.workers, func(_ int, claim func() int) {
		for s := claim(); s >= 0; s = claim() {
			residents[s], errs[s] = ls.faultIn(s)
		}
	})
	for s, err := range errs {
		if err != nil {
			ls.mu.Lock()
			ls.sealed = false
			if ls.budget > 0 {
				ls.evictLocked(-1)
			}
			ls.mu.Unlock()
			return fmt.Errorf("trie: materialize shard %d: %w", s, err)
		}
	}
	// Install the resident maps and rebuild the byte trie (a pure function
	// of the key set; insertion order is irrelevant). Concurrent readers
	// still route through the resident table until the Store(nil) below
	// publishes the eager trie — the atomic pointer is the release/acquire
	// edge covering all these plain writes.
	t.root = node{}
	t.nodes = 0
	t.dead = nil
	for s := 0; s < k; s++ {
		t.shards[s].posts = residents[s].posts
		for id := range residents[s].posts {
			t.insertPath(t.dict.Key(id), id)
		}
		for _, id := range residents[s].drained {
			if t.dead == nil {
				t.dead = make(map[features.FeatureID]struct{})
			}
			t.dead[id] = struct{}{}
		}
	}
	ls.mu.Lock()
	ls.materialized = true
	ls.mu.Unlock()
	t.lazyLive.Store(nil)
	return nil
}

// ensureMaterialized is the guard on read paths that need whole-store
// state (Walk, Len, SizeBytes, the build/mutation paths). It cannot
// return an error, so a failed materialise panics with *ShardFaultError;
// operations routed through the engine are panic-contained there.
func (t *Trie) ensureMaterialized() {
	if t.lazyLive.Load() == nil {
		return
	}
	if err := t.Materialize(); err != nil {
		panic(&ShardFaultError{Shard: -1, Err: err})
	}
}

// Residency reports the lazy-loading state (zero value for a trie that
// was never lazily opened). Counters keep reporting after Materialize.
func (t *Trie) Residency() Residency {
	ls := t.lazyOrigin
	if ls == nil {
		return Residency{}
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return Residency{
		Lazy:           true,
		TotalShards:    len(ls.shards),
		ResidentShards: ls.resShards,
		ResidentBytes:  ls.resBytes,
		BudgetBytes:    ls.budget,
		Faults:         ls.faults,
		Evictions:      ls.evictions,
		OverlayReplays: ls.replays,
		Materialized:   ls.materialized,
	}
}
