package trie

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"sort"
	"testing"
)

// encodeLegacySnapshot hand-writes a version-1 or version-2 snapshot (the
// flat posting-run grammar) over ds — the current writer only emits v3, so
// backward-compat coverage needs its own encoder. Keys are interned in
// sorted order; shard = id mod shards.
func encodeLegacySnapshot(version int, shards int, ds map[string][]Posting) []byte {
	keys := make([]string, 0, len(ds))
	for k := range ds {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var buf []byte
	buf = append(buf, persistMagic...)
	buf = binary.AppendUvarint(buf, uint64(version))
	buf = binary.AppendUvarint(buf, uint64(shards))
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	for s := 0; s < shards; s++ {
		var body []byte
		var ids []int
		for id := range keys {
			if id%shards == s {
				ids = append(ids, id)
			}
		}
		body = binary.AppendUvarint(body, uint64(len(ids)))
		prevID := 0
		for _, id := range ids {
			body = binary.AppendUvarint(body, uint64(id-prevID))
			prevID = id
			ps := append([]Posting(nil), ds[keys[id]]...)
			sort.Slice(ps, func(i, j int) bool { return ps[i].Graph < ps[j].Graph })
			body = binary.AppendUvarint(body, uint64(len(ps)))
			prevG := int32(0)
			for _, p := range ps {
				body = binary.AppendUvarint(body, uint64(p.Graph-prevG))
				prevG = p.Graph
				body = binary.AppendUvarint(body, uint64(p.Count))
				body = binary.AppendUvarint(body, uint64(len(p.Locs)))
				prevL := int32(0)
				for _, l := range p.Locs {
					body = binary.AppendUvarint(body, uint64(l-prevL))
					prevL = l
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(body)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
		buf = append(buf, body...)
	}
	if version >= 2 {
		buf = append(buf, sectionEnd)
	}
	return buf
}

// legacyDataset mixes the container regimes so the promotion path has
// something to promote: a contiguous block (runs territory), an even-id
// scatter (bitmap territory) and a sparse handful (stays an array).
func legacyDataset() map[string][]Posting {
	ds := map[string][]Posting{}
	var block, evens []Posting
	for g := int32(0); g < 400; g++ {
		block = append(block, Posting{Graph: g, Count: 1})
	}
	for g := int32(0); g < 1000; g += 2 {
		evens = append(evens, Posting{Graph: g, Count: 1})
	}
	ds["dense.block"] = block
	ds["dense.evens"] = evens
	ds["sparse"] = []Posting{
		{Graph: 3, Count: 2, Locs: []int32{1, 4}},
		{Graph: 250, Count: 1},
		{Graph: 251, Count: 1},
		{Graph: 700, Count: 3},
		{Graph: 999, Count: 1},
	}
	return ds
}

// TestLegacySnapshotsPromoteOnLoad: version-1 and version-2 snapshots (flat
// posting runs) must still load, matching a fresh build of the same content
// — and the decoder must promote dense features out of arrays, the
// "arrays first, re-encoded where density warrants" migration path.
func TestLegacySnapshotsPromoteOnLoad(t *testing.T) {
	ds := legacyDataset()
	fresh := New()
	for k, ps := range ds {
		for _, p := range ps {
			fresh.Insert(k, p)
		}
	}
	for _, version := range []int{1, 2} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			data := encodeLegacySnapshot(version, 4, ds)
			got := New()
			if _, err := got.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dump(got), dump(fresh)) {
				t.Fatal("legacy snapshot contents diverge from a fresh build")
			}
			wantKinds := map[string]ContainerKind{
				"dense.block": KindRuns,
				"dense.evens": KindBitmap,
				"sparse":      KindArray,
			}
			for key, want := range wantKinds {
				id, ok := got.dict.Lookup(key)
				if !ok {
					t.Fatalf("key %q missing", key)
				}
				if kind := got.GetByID(id).IDs().Kind(); kind != want {
					t.Errorf("%q promoted to %v, want %v", key, kind, want)
				}
			}
			// An array-only reader of the same legacy bytes keeps flat arrays.
			flat := New()
			flat.SetContainerPolicy(ArrayOnlyContainers)
			if _, err := flat.ReadFrom(bytes.NewReader(data)); err != nil {
				t.Fatal(err)
			}
			id, _ := flat.dict.Lookup("dense.block")
			if kind := flat.GetByID(id).IDs().Kind(); kind != KindArray {
				t.Errorf("array-only policy loaded %v", kind)
			}
		})
	}
}

// v3Snapshot wraps one hand-crafted posting-list payload (for the feature
// id 0, key "k") in a structurally valid single-shard v3 snapshot: correct
// magic, dictionary, segment length and CRC — so the bytes reach
// decodePostingList instead of dying at the frame checks.
func v3Snapshot(postingList []byte) []byte {
	var buf []byte
	buf = append(buf, persistMagic...)
	buf = binary.AppendUvarint(buf, persistVersion)
	buf = binary.AppendUvarint(buf, 1) // shards
	buf = binary.AppendUvarint(buf, 1) // nkeys
	buf = binary.AppendUvarint(buf, 1)
	buf = append(buf, 'k')
	var body []byte
	body = binary.AppendUvarint(body, 1) // nfeat
	body = binary.AppendUvarint(body, 0) // idΔ
	body = append(body, postingList...)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)
	return append(buf, sectionEnd)
}

func uv(vals ...uint64) []byte {
	var b []byte
	for _, v := range vals {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// TestCorruptV3ContainersRejected drives structurally invalid container
// payloads — every tag, plus truncations and denormalised forms — through
// the decoder: each must fail with ErrCorrupt (never panic), and a failed
// load must leave the destination trie's previous contents intact.
func TestCorruptV3ContainersRejected(t *testing.T) {
	le64 := func(w uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		return b[:]
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases := map[string][]byte{
		"reserved tag 3":       cat([]byte{3}, uv(2, 1, 1)),
		"reserved high flags":  cat([]byte{0x40}, uv(2, 1, 1)),
		"zero cardinality":     cat([]byte{segTagArray}, uv(0)),
		"array duplicate id":   cat([]byte{segTagArray}, uv(3, 5, 0, 1)),
		"array truncated":      cat([]byte{segTagArray}, uv(3, 5, 1)),
		"bitmap zero words":    cat([]byte{segTagBitmap}, uv(1, 0, 0)),
		"bitmap popcount":      cat([]byte{segTagBitmap}, uv(3, 0, 1), le64(0xFF)), // 8 bits ≠ card 3
		"bitmap zero edge":     cat([]byte{segTagBitmap}, uv(2, 0, 2), le64(3), le64(0)),
		"bitmap truncated":     cat([]byte{segTagBitmap}, uv(64, 0, 2), le64(^uint64(0))),
		"bitmap span absurd":   cat([]byte{segTagBitmap}, uv(2, 1<<30, 2), le64(1), le64(1)),
		"runs zero runs":       cat([]byte{segTagRuns}, uv(4, 0)),
		"runs length mismatch": cat([]byte{segTagRuns}, uv(4, 1, 0, 2)), // covers 3 ids, card 4
		"runs more than card":  cat([]byte{segTagRuns}, uv(1, 2, 0, 0, 0, 0)),
		"counts all ones":      cat([]byte{segTagArray | segFlagCounts}, uv(2, 1, 1, 1, 1)),
		"locs all empty":       cat([]byte{segTagArray | segFlagLocs}, uv(2, 1, 1, 0, 0)),
		"counts truncated":     cat([]byte{segTagArray | segFlagCounts}, uv(2, 1, 1, 2)),
	}
	for name, pl := range cases {
		t.Run(name, func(t *testing.T) {
			pre := New()
			pre.Insert("keep", Posting{Graph: 1, Count: 2})
			before := dump(pre)
			_, err := pre.ReadFrom(bytes.NewReader(v3Snapshot(pl)))
			if err == nil {
				t.Fatal("corrupt container payload loaded without error")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			if !reflect.DeepEqual(dump(pre), before) {
				t.Error("failed load did not leave the trie intact")
			}
		})
	}
	// Control: a well-formed hand-built payload of each tag decodes.
	valid := map[string][]byte{
		"array":  cat([]byte{segTagArray}, uv(2, 5, 3)),
		"bitmap": cat([]byte{segTagBitmap}, uv(9, 0, 2), le64(0xFF), le64(1)),
		"runs":   cat([]byte{segTagRuns}, uv(12, 2, 0, 5, 2, 5)),
	}
	for name, pl := range valid {
		t.Run("valid "+name, func(t *testing.T) {
			tr := New()
			if _, err := tr.ReadFrom(bytes.NewReader(v3Snapshot(pl))); err != nil {
				t.Fatalf("well-formed %s payload rejected: %v", name, err)
			}
			id, ok := tr.dict.Lookup("k")
			if !ok || tr.GetByID(id).Len() == 0 {
				t.Fatal("decoded feature missing")
			}
		})
	}
}

// TestNonCanonicalV3Promoted: the reader accepts any structurally valid
// container and re-encodes it canonically — a sparse set arriving as a
// bitmap must come back as an array, and dense runs arriving as an array
// must be promoted.
func TestNonCanonicalV3Promoted(t *testing.T) {
	le64 := func(w uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		return b[:]
	}
	// Two distant ids {0, 640} encoded as a sprawling (valid) bitmap.
	pl := append([]byte{segTagBitmap}, uv(2, 0, 11)...)
	pl = append(pl, le64(1)...)
	for i := 0; i < 9; i++ {
		pl = append(pl, le64(0)...)
	}
	pl = append(pl, le64(1)...)
	tr := New()
	if _, err := tr.ReadFrom(bytes.NewReader(v3Snapshot(pl))); err != nil {
		t.Fatal(err)
	}
	id, _ := tr.dict.Lookup("k")
	got := tr.GetByID(id)
	if got.IDs().Kind() != KindArray {
		t.Errorf("sparse bitmap not demoted to array: %v", got.IDs().Kind())
	}
	if got.Len() != 2 {
		t.Errorf("cardinality %d after promotion, want 2", got.Len())
	}

	// A contiguous block of 300 ids encoded as a (valid) flat array.
	arr := append([]byte{segTagArray}, uv(300)...)
	arr = append(arr, uv(7)...) // first id 7
	for i := 1; i < 300; i++ {
		arr = append(arr, uv(1)...)
	}
	tr2 := New()
	if _, err := tr2.ReadFrom(bytes.NewReader(v3Snapshot(arr))); err != nil {
		t.Fatal(err)
	}
	id2, _ := tr2.dict.Lookup("k")
	if kind := tr2.GetByID(id2).IDs().Kind(); kind != KindRuns {
		t.Errorf("contiguous array not promoted to runs: %v", kind)
	}
}
