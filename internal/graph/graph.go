// Package graph provides the labeled undirected graph type that underpins
// every component of the iGQ reproduction: the dataset graphs, the query
// graphs, and the feature-extraction and isomorphism machinery built on top.
//
// Graphs are vertex-labeled (the paper's Definition 1); labels are small
// integers. Vertices are dense indices 0..N-1, which keeps adjacency
// structures compact and makes the graph cheap to copy and hash.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Label is a vertex label. The paper's formal model uses an arbitrary label
// domain U; all algorithms here only require equality, so a small integer
// domain loses no generality (string label vocabularies can be interned).
type Label int32

// Graph is a labeled undirected graph G = (V, E, l) per Definition 1 of the
// paper. The zero value is an empty graph ready for use.
//
// Edges may optionally carry labels too — the paper notes that all results
// "straightforwardly generalize to graphs with edge labels", and this
// implementation realises that: edge labels default to 0 (unlabeled) and
// participate in feature canonical forms and isomorphism feasibility when
// set.
//
// Invariants maintained by the mutators:
//   - adjacency lists are kept sorted and duplicate-free,
//   - there are no self-loops,
//   - len(labels) == number of vertices,
//   - elabels[v] is aligned index-by-index with adj[v].
type Graph struct {
	// ID is an optional caller-assigned identifier (e.g. position in a
	// dataset). It is carried through serialization but has no semantic
	// role in any algorithm.
	ID int

	labels  []Label
	adj     [][]int32
	elabels [][]Label // edge labels aligned with adj; nil when all zero
	edges   int

	// fp memoises Fingerprint (0 = not yet computed). Structural mutators
	// reset it; Fingerprint is on the per-query cache path and the
	// snapshot-load dataset guard, both of which revisit the same immutable
	// graphs, so recomputing the WL refinement every time is pure waste.
	fp atomic.Uint64
}

// New returns an empty graph with capacity hints for n vertices.
func New(n int) *Graph {
	return &Graph{
		labels: make([]Label, 0, n),
		adj:    make([][]int32, 0, n),
	}
}

// NumVertices returns |V(G)|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E(G)| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.edges }

// AddVertex appends a vertex with the given label and returns its index.
func (g *Graph) AddVertex(l Label) int {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	if g.elabels != nil {
		g.elabels = append(g.elabels, nil)
	}
	g.fp.Store(0)
	return len(g.labels) - 1
}

// Label returns the label of vertex v.
func (g *Graph) Label(v int) Label { return g.labels[v] }

// SetLabel replaces the label of vertex v.
func (g *Graph) SetLabel(v int, l Label) {
	g.labels[v] = l
	g.fp.Store(0)
}

// Degree returns the number of neighbours of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// AddEdge inserts the undirected unlabeled edge (u, v). It reports whether
// the edge was newly added; self-loops and duplicates are rejected
// (returning false), matching the simple-graph model of the paper.
func (g *Graph) AddEdge(u, v int) bool { return g.AddEdgeLabeled(u, v, 0) }

// AddEdgeLabeled inserts the undirected edge (u, v) carrying label l.
// Storage for edge labels is materialised lazily on the first non-zero
// label, so unlabeled graphs pay nothing.
func (g *Graph) AddEdgeLabeled(u, v int, l Label) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.labels) || v >= len(g.labels) {
		return false
	}
	if g.HasEdge(u, v) {
		return false
	}
	if l != 0 && g.elabels == nil {
		g.elabels = make([][]Label, len(g.labels))
		for i, a := range g.adj {
			g.elabels[i] = make([]Label, len(a))
		}
	}
	var iu, iv int
	g.adj[u], iu = insertSorted(g.adj[u], int32(v))
	g.adj[v], iv = insertSorted(g.adj[v], int32(u))
	if g.elabels != nil {
		g.elabels[u] = insertLabelAt(g.elabels[u], iu, l)
		g.elabels[v] = insertLabelAt(g.elabels[v], iv, l)
	}
	g.edges++
	g.fp.Store(0)
	return true
}

// EdgeLabel returns the label of edge (u, v), or 0 if the edge is absent or
// unlabeled.
func (g *Graph) EdgeLabel(u, v int) Label {
	if g.elabels == nil || u < 0 || u >= len(g.labels) {
		return 0
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return g.elabels[u][i]
	}
	return 0
}

// HasEdgeLabels reports whether any edge carries a non-zero label.
func (g *Graph) HasEdgeLabels() bool {
	for _, ls := range g.elabels {
		for _, l := range ls {
			if l != 0 {
				return true
			}
		}
	}
	return false
}

func insertLabelAt(ls []Label, i int, l Label) []Label {
	ls = append(ls, 0)
	copy(ls[i+1:], ls[i:])
	ls[i] = l
	return ls
}

// HasEdge reports whether the undirected edge (u, v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.labels) || v >= len(g.labels) {
		return false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

func insertSorted(a []int32, x int32) ([]int32, int) {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = x
	return a, i
}

// Edges calls fn for every undirected edge exactly once, with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// EdgeList returns all edges as (u, v) pairs with u < v, in deterministic
// order.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.edges)
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// CopyFrom replaces g's contents with src's (sharing src's backing storage;
// use Clone for an independent copy). It exists because Graph carries an
// atomic fingerprint memo and therefore cannot be copied with plain struct
// assignment.
func (g *Graph) CopyFrom(src *Graph) {
	g.ID = src.ID
	g.labels = src.labels
	g.adj = src.adj
	g.elabels = src.elabels
	g.edges = src.edges
	g.fp.Store(src.fp.Load())
}

// Clone returns a deep copy of g (including ID and edge labels).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ID:     g.ID,
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]int32, len(g.adj)),
		edges:  g.edges,
	}
	for i, a := range g.adj {
		c.adj[i] = append([]int32(nil), a...)
	}
	if g.elabels != nil {
		c.elabels = make([][]Label, len(g.elabels))
		for i, ls := range g.elabels {
			c.elabels[i] = append([]Label(nil), ls...)
		}
	}
	return c
}

// EdgesLabeled calls fn for every undirected edge exactly once, with u < v
// and the edge's label.
func (g *Graph) EdgesLabeled(fn func(u, v int, l Label)) {
	for u := range g.adj {
		for i, w := range g.adj[u] {
			if int(w) > u {
				var l Label
				if g.elabels != nil {
					l = g.elabels[u][i]
				}
				fn(u, int(w), l)
			}
		}
	}
}

// Labels returns a copy of the label slice indexed by vertex.
func (g *Graph) Labels() []Label { return append([]Label(nil), g.labels...) }

// LabelSet returns the set of distinct labels appearing in g, sorted.
func (g *Graph) LabelSet() []Label {
	seen := map[Label]struct{}{}
	for _, l := range g.labels {
		seen[l] = struct{}{}
	}
	out := make([]Label, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelCounts returns a histogram of vertex labels.
func (g *Graph) LabelCounts() map[Label]int {
	h := make(map[Label]int)
	for _, l := range g.labels {
		h[l]++
	}
	return h
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// AvgDegree returns the average vertex degree (2|E|/|V|), 0 for empty graphs.
func (g *Graph) AvgDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.labels))
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new vertex index to original vertex index.
// Vertices keep their labels; edges with both ends in the set are retained.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	idx := make(map[int]int, len(vs))
	sub := New(len(vs))
	orig := make([]int, 0, len(vs))
	for _, v := range vs {
		if _, dup := idx[v]; dup {
			continue
		}
		idx[v] = sub.AddVertex(g.labels[v])
		orig = append(orig, v)
	}
	for v, nv := range idx {
		for i, w := range g.adj[v] {
			if nw, ok := idx[int(w)]; ok && nv < nw {
				var l Label
				if g.elabels != nil {
					l = g.elabels[v][i]
				}
				sub.AddEdgeLabeled(nv, nw, l)
			}
		}
	}
	return sub, orig
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by their smallest vertex.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.labels)
	seen := make([]bool, n)
	var comps [][]int
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], int32(s))
		comp := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, int(w))
					queue = append(queue, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected; a single vertex does too).
func (g *Graph) IsConnected() bool {
	if len(g.labels) <= 1 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// BFSOrder returns vertices reachable from start in breadth-first order.
func (g *Graph) BFSOrder(start int) []int {
	if start < 0 || start >= len(g.labels) {
		return nil
	}
	seen := make([]bool, len(g.labels))
	order := make([]int, 0, len(g.labels))
	queue := []int32{int32(start)}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, int(v))
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// SizeBytes returns the approximate in-memory footprint of the graph
// structure, used for the index-size accounting of the paper's Figure 18.
func (g *Graph) SizeBytes() int {
	sz := 16 + 4*len(g.labels) // labels + header
	for _, a := range g.adj {
		sz += 24 + 4*len(a)
	}
	for _, ls := range g.elabels {
		sz += 24 + 4*len(ls)
	}
	return sz
}

// String returns a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{id=%d |V|=%d |E|=%d}", g.ID, len(g.labels), g.edges)
}

// Validate checks the structural invariants and returns a descriptive error
// if any is violated. Intended for tests and for data loaded from files.
func (g *Graph) Validate() error {
	if len(g.labels) != len(g.adj) {
		return fmt.Errorf("graph: %d labels but %d adjacency lists", len(g.labels), len(g.adj))
	}
	count := 0
	for u, a := range g.adj {
		for i, w := range a {
			if int(w) == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if w < 0 || int(w) >= len(g.labels) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", u, w)
			}
			if i > 0 && a[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(int(w), u) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", u, w)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency total %d", g.edges, count)
	}
	if g.elabels != nil {
		if len(g.elabels) != len(g.adj) {
			return fmt.Errorf("graph: %d edge-label lists but %d adjacency lists", len(g.elabels), len(g.adj))
		}
		for u := range g.adj {
			if len(g.elabels[u]) != len(g.adj[u]) {
				return fmt.Errorf("graph: vertex %d has %d edge labels for %d neighbours",
					u, len(g.elabels[u]), len(g.adj[u]))
			}
			for i, w := range g.adj[u] {
				if g.elabels[u][i] != g.EdgeLabel(int(w), u) {
					return fmt.Errorf("graph: edge (%d,%d) label asymmetric", u, w)
				}
			}
		}
	}
	return nil
}
