package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// path builds a labeled path graph l0-l1-...-lk.
func path(labels ...Label) *Graph {
	g := New(len(labels))
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("empty graph should count as connected")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("empty graph invalid: %v", err)
	}
	if got := g.AvgDegree(); got != 0 {
		t.Errorf("AvgDegree of empty graph = %v, want 0", got)
	}
}

func TestAddVertexAndEdge(t *testing.T) {
	g := New(3)
	a := g.AddVertex(1)
	b := g.AddVertex(2)
	c := g.AddVertex(3)
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("vertex ids = %d,%d,%d", a, b, c)
	}
	if !g.AddEdge(a, b) {
		t.Fatal("AddEdge(a,b) rejected")
	}
	if g.AddEdge(a, b) || g.AddEdge(b, a) {
		t.Error("duplicate edge accepted")
	}
	if g.AddEdge(a, a) {
		t.Error("self-loop accepted")
	}
	if g.AddEdge(a, 99) || g.AddEdge(-1, b) {
		t.Error("out-of-range edge accepted")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(a, c) {
		t.Error("phantom edge")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := path(1, 2, 3, 4)
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	want := 2 * 3.0 / 4.0
	if got := g.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
}

func TestEdgeListDeterministic(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(Label(i))
	}
	g.AddEdge(3, 0)
	g.AddEdge(2, 1)
	g.AddEdge(0, 1)
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}}
	if got := g.EdgeList(); !reflect.DeepEqual(got, want) {
		t.Errorf("EdgeList = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path(1, 2, 3)
	c := g.Clone()
	c.AddVertex(9)
	c.AddEdge(0, 2)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Error("mutating clone affected original")
	}
	if c.NumVertices() != 4 || c.NumEdges() != 3 {
		t.Error("clone mutation lost")
	}
}

func TestLabelSetAndCounts(t *testing.T) {
	g := path(5, 3, 5, 1)
	if got := g.LabelSet(); !reflect.DeepEqual(got, []Label{1, 3, 5}) {
		t.Errorf("LabelSet = %v", got)
	}
	h := g.LabelCounts()
	if h[5] != 2 || h[3] != 1 || h[1] != 1 {
		t.Errorf("LabelCounts = %v", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// triangle 0-1-2 plus pendant 3
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(Label(10 + i))
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)

	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle: |V|=%d |E|=%d", sub.NumVertices(), sub.NumEdges())
	}
	if !reflect.DeepEqual(orig, []int{0, 1, 2}) {
		t.Errorf("orig mapping = %v", orig)
	}
	for i, o := range orig {
		if sub.Label(i) != g.Label(o) {
			t.Errorf("label mismatch at %d", i)
		}
	}
	// duplicate vertices collapse
	sub2, orig2 := g.InducedSubgraph([]int{3, 3, 2})
	if sub2.NumVertices() != 2 || sub2.NumEdges() != 1 {
		t.Errorf("dup-vertex induced: |V|=%d |E|=%d", sub2.NumVertices(), sub2.NumEdges())
	}
	if len(orig2) != 2 {
		t.Errorf("orig2 = %v", orig2)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddVertex(1)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if !reflect.DeepEqual(comps, want) {
		t.Errorf("components = %v, want %v", comps, want)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestBFSOrder(t *testing.T) {
	g := path(1, 1, 1, 1)
	got := g.BFSOrder(1)
	if !reflect.DeepEqual(got, []int{1, 0, 2, 3}) {
		t.Errorf("BFSOrder(1) = %v", got)
	}
	if g.BFSOrder(-1) != nil || g.BFSOrder(99) != nil {
		t.Error("out-of-range BFS start should return nil")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := path(1, 2, 3)
	g.adj[0] = append(g.adj[0], 0) // self loop
	if err := g.Validate(); err == nil {
		t.Error("Validate missed self-loop")
	}
	g2 := path(1, 2)
	g2.adj[0] = append(g2.adj[0], 5) // out of range
	if err := g2.Validate(); err == nil {
		t.Error("Validate missed out-of-range neighbour")
	}
	g3 := path(1, 2, 3)
	g3.edges = 7
	if err := g3.Validate(); err == nil {
		t.Error("Validate missed edge-count mismatch")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var gs []*Graph
	for i := 0; i < 20; i++ {
		g := randomGraph(rng, 1+rng.Intn(15), 0.3, 4)
		g.ID = i
		gs = append(gs, g)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, gs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(gs) {
		t.Fatalf("round trip count %d != %d", len(back), len(gs))
	}
	for i := range gs {
		if !equalGraphs(gs[i], back[i]) {
			t.Errorf("graph %d differs after round trip", i)
		}
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"3\n1\n",                    // missing header
		"#x\n",                      // bad id
		"#1\n-1\n",                  // bad vertex count
		"#1\n2\n1\n",                // truncated labels
		"#1\n1\n5\nxx\n",            // bad edge count
		"#1\n2\n1\n2\n1\n0 0\n",     // self loop edge
		"#1\n2\n1\n2\n1\n0 5\n",     // out of range edge
		"#1\n2\n1\n2\n2\n0 1\n",     // truncated edges
		"#1\n2\n1\n2\n1\n0 1 2 3\n", // malformed edge line (4 fields)
		"#1\n2\n1\n2\n1\n0 1 x\n",   // bad edge label
	}
	for i, c := range cases {
		if _, err := ReadAll(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestCodecSkipsCommentsAndBlanks(t *testing.T) {
	in := "// a comment\n\n#7\n2\n\n4\n5\n1\n// edge next\n0 1\n"
	gs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].ID != 7 || gs[0].NumEdges() != 1 {
		t.Errorf("parsed %v", gs)
	}
}

func TestDOT(t *testing.T) {
	g := path(1, 2)
	s := DOT(g)
	if !strings.Contains(s, "n0 -- n1") || !strings.Contains(s, "label=\"2\"") {
		t.Errorf("DOT output missing pieces:\n%s", s)
	}
}

func equalGraphs(a, b *Graph) bool {
	if a.ID != b.ID || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(v) != b.Label(v) {
			return false
		}
	}
	return reflect.DeepEqual(a.EdgeList(), b.EdgeList())
}

// randomGraph produces a connected-ish random graph for tests.
func randomGraph(rng *rand.Rand, n int, p float64, labels int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(Label(rng.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		g := randomGraph(rng, n, 0.4, 3)
		perm := rng.Perm(n)
		h := New(n)
		for i := 0; i < n; i++ {
			h.AddVertex(0)
		}
		for i := 0; i < n; i++ {
			h.SetLabel(perm[i], g.Label(i))
		}
		g.Edges(func(u, v int) { h.AddEdge(perm[u], perm[v]) })
		if Fingerprint(g) != Fingerprint(h) {
			t.Fatalf("trial %d: fingerprint not permutation-invariant", trial)
		}
		if !SameSignature(g, h) {
			t.Fatalf("trial %d: SameSignature failed on isomorphic pair", trial)
		}
	}
}

func TestFingerprintSeparatesLabels(t *testing.T) {
	a := path(1, 2, 3)
	b := path(1, 2, 4)
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("fingerprints collide on different labels (possible but indicates weak hash)")
	}
	if SameSignature(a, b) {
		t.Error("SameSignature true for different label sets")
	}
}

func TestSameSignatureRejectsDifferentDegrees(t *testing.T) {
	// path 0-1-2-3 vs star center 0
	p := path(1, 1, 1, 1)
	s := New(4)
	for i := 0; i < 4; i++ {
		s.AddVertex(1)
	}
	s.AddEdge(0, 1)
	s.AddEdge(0, 2)
	s.AddEdge(0, 3)
	if SameSignature(p, s) {
		t.Error("path and star share signature")
	}
}

func TestQuickInsertSortedKeepsOrder(t *testing.T) {
	f := func(xs []int32) bool {
		var a []int32
		for _, x := range xs {
			var at int
			a, at = insertSorted(a, x)
			if a[at] != x {
				return false
			}
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				return false
			}
		}
		return len(a) == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesMonotone(t *testing.T) {
	small := path(1, 2)
	big := path(1, 2, 3, 4, 5, 6, 7, 8)
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("SizeBytes not monotone: %d vs %d", small.SizeBytes(), big.SizeBytes())
	}
}

func TestStringer(t *testing.T) {
	g := path(1, 2)
	g.ID = 3
	if got := g.String(); !strings.Contains(got, "id=3") || !strings.Contains(got, "|V|=2") {
		t.Errorf("String() = %q", got)
	}
}

func TestSaveLoadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/graphs.db"
	rng := rand.New(rand.NewSource(77))
	var gs []*Graph
	for i := 0; i < 5; i++ {
		g := randomGraph(rng, 4+rng.Intn(6), 0.4, 3)
		g.ID = i
		gs = append(gs, g)
	}
	if err := SaveFile(path, gs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(gs) {
		t.Fatalf("round trip count %d != %d", len(back), len(gs))
	}
	for i := range gs {
		if !equalGraphs(gs[i], back[i]) {
			t.Errorf("graph %d differs after file round trip", i)
		}
	}
	// error paths
	if err := SaveFile(dir, gs); err == nil { // target is a directory
		t.Error("SaveFile to a directory should fail")
	}
	if _, err := LoadFile(dir + "/missing.db"); err == nil {
		t.Error("LoadFile of missing file should fail")
	}
}

func TestLabelsAccessor(t *testing.T) {
	g := path(4, 5, 6)
	ls := g.Labels()
	if !reflect.DeepEqual(ls, []Label{4, 5, 6}) {
		t.Errorf("Labels = %v", ls)
	}
	ls[0] = 99 // must be a copy
	if g.Label(0) != 4 {
		t.Error("Labels() leaked internal storage")
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := path(1, 2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) || g.HasEdge(99, 0) {
		t.Error("out-of-range HasEdge returned true")
	}
}

func TestSameSignatureEdgeCases(t *testing.T) {
	a := path(1, 2)
	b := path(1, 3)
	if SameSignature(a, b) {
		t.Error("different label histograms accepted")
	}
	// same counts, same degrees, different histogram sizes
	c := path(1, 1)
	d := path(1, 2)
	if SameSignature(c, d) {
		t.Error("different histogram cardinality accepted")
	}
}
