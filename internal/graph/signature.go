package graph

import (
	"hash/fnv"
	"slices"
	"sort"
)

// Fingerprint is an order-invariant structural hash of a graph. Two
// isomorphic graphs always produce the same fingerprint; distinct graphs may
// collide (it is a hash), so it is a fast pre-filter for exact-duplicate
// detection in the iGQ cache, never a substitute for an isomorphism test.
//
// The construction is a short Weisfeiler-Lehman colour refinement: vertices
// start coloured by label, each round recolours a vertex by hashing its
// colour with the sorted multiset of neighbour colours, and the final
// fingerprint hashes the sorted colour multiset with |V| and |E|.
//
// The result is memoised on the graph and invalidated by structural
// mutation, so repeated fingerprinting of the same graph — the dataset
// guard on every snapshot load, duplicate detection on every cached query —
// costs one atomic load after the first call.
func Fingerprint(g *Graph) uint64 {
	if fp := g.fp.Load(); fp != 0 {
		return fp
	}
	fp := fingerprint(g)
	g.fp.Store(fp) // 0 is "unset": a zero hash just recomputes (1 in 2^64)
	return fp
}

func fingerprint(g *Graph) uint64 {
	n := g.NumVertices()
	cur := make([]uint64, n)
	for v := 0; v < n; v++ {
		cur[v] = mix(14695981039346656037, uint64(g.Label(v))+0x9e37)
	}
	next := make([]uint64, n)
	neigh := make([]uint64, 0, 16)
	rounds := 3
	if n < 3 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			neigh = neigh[:0]
			for _, w := range g.Neighbors(v) {
				// edge labels flow into the colour so fingerprints separate
				// graphs differing only in bond types
				neigh = append(neigh, mix(cur[w], uint64(g.EdgeLabel(v, int(w)))+0x51ed))
			}
			slices.Sort(neigh)
			h := mix(cur[v], 0x85ebca6b)
			for _, x := range neigh {
				h = mix(h, x)
			}
			next[v] = h
		}
		cur, next = next, cur
	}
	slices.Sort(cur)
	final := cur
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(n))
	put(uint64(g.NumEdges()))
	for _, x := range final {
		put(x)
	}
	return h.Sum64()
}

// mix is a 64-bit hash combiner (xorshift-multiply, splitmix64 finaliser).
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DegreeSequence returns the sorted (descending) degree sequence of g.
// Equal degree sequences are a necessary condition for isomorphism and a
// cheap pre-filter used in tests.
func DegreeSequence(g *Graph) []int {
	ds := make([]int, g.NumVertices())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// SameSignature reports whether a and b agree on the cheap isomorphism
// invariants: vertex count, edge count, label histogram and degree sequence.
func SameSignature(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ha, hb := a.LabelCounts(), b.LabelCounts()
	if len(ha) != len(hb) {
		return false
	}
	for l, c := range ha {
		if hb[l] != c {
			return false
		}
	}
	da, db := DegreeSequence(a), DegreeSequence(b)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}
