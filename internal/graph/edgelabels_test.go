package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAddEdgeLabeledBasics(t *testing.T) {
	g := New(3)
	g.AddVertex(1)
	g.AddVertex(2)
	g.AddVertex(3)
	if !g.AddEdgeLabeled(0, 1, 5) {
		t.Fatal("labeled edge rejected")
	}
	if !g.AddEdge(1, 2) { // unlabeled after labeled
		t.Fatal("unlabeled edge rejected")
	}
	if g.EdgeLabel(0, 1) != 5 || g.EdgeLabel(1, 0) != 5 {
		t.Errorf("edge label = %d / %d, want 5 both ways", g.EdgeLabel(0, 1), g.EdgeLabel(1, 0))
	}
	if g.EdgeLabel(1, 2) != 0 {
		t.Errorf("unlabeled edge label = %d", g.EdgeLabel(1, 2))
	}
	if g.EdgeLabel(0, 2) != 0 {
		t.Error("absent edge should report label 0")
	}
	if !g.HasEdgeLabels() {
		t.Error("HasEdgeLabels false after labeled insert")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUnlabeledGraphPaysNothing(t *testing.T) {
	g := New(3)
	g.AddVertex(1)
	g.AddVertex(1)
	g.AddEdge(0, 1)
	if g.HasEdgeLabels() {
		t.Error("unlabeled graph claims edge labels")
	}
	if g.elabels != nil {
		t.Error("edge-label storage materialised for unlabeled graph")
	}
}

func TestLazyMaterializationBackfillsZeros(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	g.AddEdge(0, 1)           // unlabeled first
	g.AddEdgeLabeled(1, 2, 7) // triggers materialisation
	g.AddEdge(2, 3)
	if g.EdgeLabel(0, 1) != 0 || g.EdgeLabel(1, 2) != 7 || g.EdgeLabel(2, 3) != 0 {
		t.Errorf("labels: %d %d %d", g.EdgeLabel(0, 1), g.EdgeLabel(1, 2), g.EdgeLabel(2, 3))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEdgeLabelAlignmentSurvivesInsertOrder(t *testing.T) {
	// inserting edges out of order must keep labels aligned with the
	// sorted adjacency lists
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 6
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddVertex(1)
		}
		type e struct {
			u, v int
			l    Label
		}
		var es []e
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					es = append(es, e{u, v, Label(rng.Intn(4))})
				}
			}
		}
		rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		for _, x := range es {
			g.AddEdgeLabeled(x.u, x.v, x.l)
		}
		for _, x := range es {
			if g.EdgeLabel(x.u, x.v) != x.l {
				t.Fatalf("trial %d: edge (%d,%d) label %d, want %d",
					trial, x.u, x.v, g.EdgeLabel(x.u, x.v), x.l)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestEdgesLabeledIteration(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex(1)
	}
	g.AddEdgeLabeled(0, 1, 2)
	g.AddEdgeLabeled(1, 2, 3)
	got := map[[2]int]Label{}
	g.EdgesLabeled(func(u, v int, l Label) { got[[2]int{u, v}] = l })
	if got[[2]int{0, 1}] != 2 || got[[2]int{1, 2}] != 3 {
		t.Errorf("EdgesLabeled = %v", got)
	}
}

func TestCloneAndInducedPreserveEdgeLabels(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddVertex(Label(i))
	}
	g.AddEdgeLabeled(0, 1, 9)
	g.AddEdgeLabeled(1, 2, 8)
	g.AddEdge(2, 3)

	c := g.Clone()
	if c.EdgeLabel(0, 1) != 9 || c.EdgeLabel(1, 2) != 8 {
		t.Error("Clone dropped edge labels")
	}
	c.SetLabel(0, 99)
	if g.Label(0) == 99 {
		t.Error("clone shares storage")
	}

	sub, orig := g.InducedSubgraph([]int{0, 1, 2})
	_ = orig
	if sub.EdgeLabel(0, 1) != 9 || sub.EdgeLabel(1, 2) != 8 {
		t.Errorf("InducedSubgraph dropped edge labels: %d %d",
			sub.EdgeLabel(0, 1), sub.EdgeLabel(1, 2))
	}
}

func TestCodecRoundTripEdgeLabels(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddVertex(Label(i + 1))
	}
	g.AddEdgeLabeled(0, 1, 4)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatal("round trip lost graph")
	}
	if back[0].EdgeLabel(0, 1) != 4 || back[0].EdgeLabel(1, 2) != 0 {
		t.Errorf("labels after round trip: %d %d",
			back[0].EdgeLabel(0, 1), back[0].EdgeLabel(1, 2))
	}
}

func TestFingerprintSeparatesEdgeLabels(t *testing.T) {
	mk := func(l Label) *Graph {
		g := New(2)
		g.AddVertex(1)
		g.AddVertex(1)
		g.AddEdgeLabeled(0, 1, l)
		return g
	}
	if Fingerprint(mk(1)) == Fingerprint(mk(2)) {
		t.Error("fingerprints collide across edge labels")
	}
	if Fingerprint(mk(1)) != Fingerprint(mk(1)) {
		t.Error("fingerprint not deterministic")
	}
}

func TestValidateCatchesAsymmetricEdgeLabels(t *testing.T) {
	g := New(2)
	g.AddVertex(1)
	g.AddVertex(1)
	g.AddEdgeLabeled(0, 1, 3)
	g.elabels[0][0] = 4 // corrupt one direction
	if err := g.Validate(); err == nil {
		t.Error("Validate missed asymmetric edge label")
	}
}
