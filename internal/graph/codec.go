package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text codec implements a line-oriented format in the spirit of the
// GraphGrep/Grapes ".gfd" files used by the paper's baselines:
//
//	#<graph-id>
//	<num-vertices>
//	<label of vertex 0>
//	...
//	<label of vertex n-1>
//	<num-edges>
//	<u> <v> [edge-label]
//	...
//
// Edge lines carry an optional third field, the edge label (0 = unlabeled;
// writers emit it only when the graph has labeled edges). Blank lines and
// lines starting with "//" are ignored. Multiple graphs are concatenated;
// ReadAll parses the whole stream.

// Write serialises g to w in the text format above.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#%d\n%d\n", g.ID, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "%d\n", g.Label(v))
	}
	fmt.Fprintf(bw, "%d\n", g.NumEdges())
	if g.HasEdgeLabels() {
		g.EdgesLabeled(func(u, v int, l Label) { fmt.Fprintf(bw, "%d %d %d\n", u, v, l) })
	} else {
		g.Edges(func(u, v int) { fmt.Fprintf(bw, "%d %d\n", u, v) })
	}
	return bw.Flush()
}

// WriteAll serialises all graphs to w.
func WriteAll(w io.Writer, gs []*Graph) error {
	for _, g := range gs {
		if err := Write(w, g); err != nil {
			return err
		}
	}
	return nil
}

// scanner wraps bufio.Scanner skipping blanks/comments and tracking lines.
type scanner struct {
	s    *bufio.Scanner
	line int
}

func (sc *scanner) next() (string, bool) {
	for sc.s.Scan() {
		sc.line++
		t := strings.TrimSpace(sc.s.Text())
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		return t, true
	}
	return "", false
}

func (sc *scanner) errf(format string, args ...interface{}) error {
	return fmt.Errorf("graph codec: line %d: %s", sc.line, fmt.Sprintf(format, args...))
}

// ReadAll parses every graph in the stream. It validates each graph before
// returning.
func ReadAll(r io.Reader) ([]*Graph, error) {
	sc := &scanner{s: bufio.NewScanner(r)}
	sc.s.Buffer(make([]byte, 1<<16), 1<<24)
	var out []*Graph
	for {
		g, err := readOne(sc)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("graph codec: graph #%d invalid: %w", g.ID, err)
		}
		out = append(out, g)
	}
}

func readOne(sc *scanner) (*Graph, error) {
	head, ok := sc.next()
	if !ok {
		return nil, io.EOF
	}
	if !strings.HasPrefix(head, "#") {
		return nil, sc.errf("expected graph header '#<id>', got %q", head)
	}
	id, err := strconv.Atoi(strings.TrimPrefix(head, "#"))
	if err != nil {
		return nil, sc.errf("bad graph id %q: %v", head, err)
	}
	nStr, ok := sc.next()
	if !ok {
		return nil, sc.errf("unexpected EOF reading vertex count")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return nil, sc.errf("bad vertex count %q", nStr)
	}
	g := New(n)
	g.ID = id
	for i := 0; i < n; i++ {
		lStr, ok := sc.next()
		if !ok {
			return nil, sc.errf("unexpected EOF reading label %d/%d", i+1, n)
		}
		l, err := strconv.Atoi(lStr)
		if err != nil {
			return nil, sc.errf("bad label %q", lStr)
		}
		g.AddVertex(Label(l))
	}
	mStr, ok := sc.next()
	if !ok {
		return nil, sc.errf("unexpected EOF reading edge count")
	}
	m, err := strconv.Atoi(mStr)
	if err != nil || m < 0 {
		return nil, sc.errf("bad edge count %q", mStr)
	}
	for i := 0; i < m; i++ {
		eStr, ok := sc.next()
		if !ok {
			return nil, sc.errf("unexpected EOF reading edge %d/%d", i+1, m)
		}
		fields := strings.Fields(eStr)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, sc.errf("bad edge line %q", eStr)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, sc.errf("bad edge endpoints %q", eStr)
		}
		el := 0
		if len(fields) == 3 {
			el, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, sc.errf("bad edge label %q", eStr)
			}
		}
		if !g.AddEdgeLabeled(u, v, Label(el)) {
			return nil, sc.errf("invalid or duplicate edge (%d,%d)", u, v)
		}
	}
	return g, nil
}

// SaveFile writes graphs to the named file, creating or truncating it.
func SaveFile(path string, gs []*Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteAll(f, gs); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads all graphs from the named file.
func LoadFile(path string) ([]*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// DOT renders g in Graphviz DOT syntax (undirected), labels shown on nodes.
// Useful for eyeballing small query graphs in the examples.
func DOT(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph g%d {\n", g.ID)
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(&b, "  n%d [label=\"%d\"];\n", v, g.Label(v))
	}
	g.Edges(func(u, v int) { fmt.Fprintf(&b, "  n%d -- n%d;\n", u, v) })
	b.WriteString("}\n")
	return b.String()
}
