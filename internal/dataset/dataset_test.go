package dataset

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := AIDS().Scaled(0.002, 1) // ~80 graphs
	a := Generate(spec)
	b := Generate(spec)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("graph %d differs between runs", i)
		}
	}
}

func TestGeneratedGraphsValidAndConnected(t *testing.T) {
	for _, spec := range []Spec{
		AIDS().Scaled(0.001, 1),
		PDBS().Scaled(0.05, 0.05),
		PPI().Scaled(0.2, 0.02),
		Synthetic().Scaled(0.01, 0.1),
	} {
		db := Generate(spec)
		if len(db) < 4 {
			t.Errorf("%s: only %d graphs", spec.Name, len(db))
		}
		for i, g := range db {
			if err := g.Validate(); err != nil {
				t.Fatalf("%s graph %d invalid: %v", spec.Name, i, err)
			}
			if !g.IsConnected() {
				t.Fatalf("%s graph %d disconnected", spec.Name, i)
			}
			if g.ID != i {
				t.Fatalf("%s graph %d has ID %d", spec.Name, i, g.ID)
			}
		}
	}
}

func TestCharacteristicsMatchSpecShape(t *testing.T) {
	spec := AIDS().Scaled(0.01, 1) // 400 graphs, original sizes
	db := Generate(spec)
	c := Measure(spec.Name, db)
	if c.Graphs != len(db) {
		t.Errorf("graphs = %d", c.Graphs)
	}
	// mean vertex count within 15% of spec
	if math.Abs(c.Nodes.Mean-spec.NodesMean) > 0.15*spec.NodesMean {
		t.Errorf("node mean %.1f far from spec %.1f", c.Nodes.Mean, spec.NodesMean)
	}
	// average degree within 10%
	if math.Abs(c.AvgDegree-spec.AvgDegree) > 0.1*spec.AvgDegree {
		t.Errorf("avg degree %.2f far from spec %.2f", c.AvgDegree, spec.AvgDegree)
	}
	// labels bounded by the domain
	if c.Labels > spec.Labels {
		t.Errorf("labels %d exceed domain %d", c.Labels, spec.Labels)
	}
	if c.Connected != len(db) {
		t.Errorf("only %d/%d connected", c.Connected, len(db))
	}
	if c.SizeBytesDB <= 0 {
		t.Error("dataset size not measured")
	}
}

func TestDenseSpecsAreDense(t *testing.T) {
	db := Generate(Synthetic().Scaled(0.01, 0.1))
	c := Measure("synthetic", db)
	if c.AvgDegree < 10 {
		t.Errorf("synthetic avg degree %.2f — expected dense (≈19.5)", c.AvgDegree)
	}
	sparse := Generate(AIDS().Scaled(0.001, 1))
	cs := Measure("aids", sparse)
	if cs.AvgDegree > 3 {
		t.Errorf("AIDS avg degree %.2f — expected sparse (≈2.1)", cs.AvgDegree)
	}
}

func TestScaledFloors(t *testing.T) {
	tiny := AIDS().Scaled(0.000001, 0.000001)
	if tiny.NumGraphs < 4 || tiny.NodesMin < 3 || tiny.NodesMax <= tiny.NodesMin {
		t.Errorf("scaled floors broken: %+v", tiny)
	}
	db := Generate(tiny)
	for _, g := range db {
		if g.NumVertices() < 3 {
			t.Errorf("graph smaller than floor: %v", g)
		}
	}
}

func TestLabelSkewProducesSkew(t *testing.T) {
	skewed := Generate(Spec{
		Name: "sk", NumGraphs: 20, Labels: 30,
		NodesMean: 50, NodesStd: 5, NodesMin: 30, NodesMax: 80,
		AvgDegree: 2.1, LabelSkew: 2.0, Seed: 7,
	})
	counts := map[int]int{}
	total := 0
	for _, g := range skewed {
		for v := 0; v < g.NumVertices(); v++ {
			counts[int(g.Label(v))]++
			total++
		}
	}
	if counts[0] < total/4 {
		t.Errorf("label 0 share %d/%d — expected dominant under skew", counts[0], total)
	}
}

func TestFullScaleSpecsMatchTable1(t *testing.T) {
	// verify the hard-coded specs carry the paper's Table 1 numbers
	a := AIDS()
	if a.NumGraphs != 40000 || a.Labels != 62 || a.NodesMax != 245 {
		t.Errorf("AIDS spec drifted: %+v", a)
	}
	p := PDBS()
	if p.NumGraphs != 600 || p.Labels != 10 {
		t.Errorf("PDBS spec drifted: %+v", p)
	}
	i := PPI()
	if i.NumGraphs != 20 || i.Labels != 46 {
		t.Errorf("PPI spec drifted: %+v", i)
	}
	s := Synthetic()
	if s.NumGraphs != 1000 || s.Labels != 20 {
		t.Errorf("Synthetic spec drifted: %+v", s)
	}
}

func TestCharacteristicsString(t *testing.T) {
	db := Generate(AIDS().Scaled(0.0005, 1))
	c := Measure("AIDS", db)
	s := c.String()
	if len(s) == 0 || c.Name != "AIDS" {
		t.Errorf("String() = %q", s)
	}
}

func TestMolecularStructureHasShortRings(t *testing.T) {
	spec := AIDS().Scaled(0.002, 1) // molecular structure by default
	db := Generate(spec)
	withCycle := 0
	for _, g := range db {
		if err := g.Validate(); err != nil {
			t.Fatalf("molecular graph invalid: %v", err)
		}
		if !g.IsConnected() {
			t.Fatal("molecular graph disconnected")
		}
		if g.NumEdges() >= g.NumVertices() {
			withCycle++
		}
	}
	if withCycle < len(db)/2 {
		t.Errorf("only %d/%d molecular graphs contain rings", withCycle, len(db))
	}
}

func TestMolecularMatchesDegreeTarget(t *testing.T) {
	spec := AIDS().Scaled(0.005, 1)
	db := Generate(spec)
	c := Measure("aids", db)
	if math.Abs(c.AvgDegree-spec.AvgDegree) > 0.15*spec.AvgDegree {
		t.Errorf("molecular avg degree %.2f far from %.2f", c.AvgDegree, spec.AvgDegree)
	}
}

func TestStructureFieldPreservedByScaling(t *testing.T) {
	s := AIDS().Scaled(0.1, 0.5).WithDegree(0.9)
	if s.Structure != StructureMolecular {
		t.Error("Scaled/WithDegree dropped the Structure field")
	}
}

func TestEdgeLabelGeneration(t *testing.T) {
	spec := AIDS().Scaled(0.0005, 1)
	spec.EdgeLabels = 3
	db := Generate(spec)
	sawBase, sawHigher := false, false
	for _, g := range db {
		if err := g.Validate(); err != nil {
			t.Fatalf("labeled graph invalid: %v", err)
		}
		if !g.HasEdgeLabels() {
			t.Fatal("EdgeLabels spec produced unlabeled graph")
		}
		g.EdgesLabeled(func(u, v int, l graph.Label) {
			switch {
			case l == 1:
				sawBase = true
			case l >= 2 && l <= 3:
				sawHigher = true
			default:
				t.Fatalf("edge label %d outside domain", l)
			}
		})
	}
	if !sawBase || !sawHigher {
		t.Errorf("bond mix missing: base=%v higher=%v", sawBase, sawHigher)
	}
	// determinism with labels
	db2 := Generate(spec)
	if db[0].EdgeLabel(0, int(db[0].Neighbors(0)[0])) != db2[0].EdgeLabel(0, int(db2[0].Neighbors(0)[0])) {
		t.Error("edge labels not deterministic")
	}
}

func TestUniformLabelPicker(t *testing.T) {
	// LabelSkew <= 1 must use the uniform sampler and cover the domain
	spec := Spec{
		Name: "uni", NumGraphs: 10, Labels: 5,
		NodesMean: 60, NodesStd: 5, NodesMin: 40, NodesMax: 90,
		AvgDegree: 2.1, LabelSkew: 0, Seed: 9,
	}
	db := Generate(spec)
	seen := map[graph.Label]bool{}
	for _, g := range db {
		for v := 0; v < g.NumVertices(); v++ {
			seen[g.Label(v)] = true
		}
	}
	if len(seen) != 5 {
		t.Errorf("uniform labels covered %d/5", len(seen))
	}
	one := Spec{
		Name: "one", NumGraphs: 3, Labels: 1,
		NodesMean: 10, NodesStd: 1, NodesMin: 5, NodesMax: 15,
		AvgDegree: 2.0, LabelSkew: 0, Seed: 9,
	}
	for _, g := range Generate(one) {
		for v := 0; v < g.NumVertices(); v++ {
			if g.Label(v) != 0 {
				t.Fatal("single-label domain produced other labels")
			}
		}
	}
}
