// Package dataset synthesises graph databases that statistically emulate
// the four datasets of the paper's Table 1 — AIDS, PDBS, PPI and the
// synthetic dense set — since the originals (NCI molecule files, PDB
// structures, protein-interaction downloads) are not shipped with this
// repository.
//
// The generators match the characteristics iGQ's behaviour actually depends
// on: number of graphs, vertex-count distribution (mean/std/max), density
// (average degree), label-domain size and label skew. Every graph is
// connected (spanning tree plus density-filling extra edges), mirroring the
// molecule/protein graphs of the originals. A --scale style knob shrinks
// graph counts and sizes proportionally so the full experiment suite runs
// in CI time; full-scale specs reproduce Table 1's numbers directly.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Structure selects the edge topology of generated graphs.
type Structure int

const (
	// StructureRandom: random recursive tree plus uniformly random extra
	// edges — the generic connected-graph model.
	StructureRandom Structure = iota
	// StructureMolecular: chain-biased backbone with short ring closures
	// (5–6 atoms), the shape of small organic molecules. Rings make the
	// cycle features of CT-Index meaningful, as in the real AIDS set.
	StructureMolecular
)

// Spec describes a synthetic dataset family.
type Spec struct {
	Name      string
	NumGraphs int
	Labels    int     // label-domain size ("unique vertex labels" in Table 1)
	NodesMean float64 // mean vertices per graph
	NodesStd  float64 // std-dev of vertices per graph
	NodesMin  int     // clamp (≥ 1)
	NodesMax  int     // clamp
	AvgDegree float64 // 2|E|/|V| target
	LabelSkew float64 // Zipf s-parameter for label popularity; <=1 → uniform
	Structure Structure
	// EdgeLabels is the edge-label ("bond type") domain size; <=1 leaves
	// edges unlabeled. Labels are drawn 1..EdgeLabels with a single-bond
	// bias, molecule-style.
	EdgeLabels int
	Seed       int64
}

// AIDS emulates the NCI antiviral screen set: 40k very small sparse
// molecule graphs over 62 atom labels (Table 1 row 1).
func AIDS() Spec {
	return Spec{
		Name: "AIDS", NumGraphs: 40000, Labels: 62,
		NodesMean: 45, NodesStd: 22, NodesMin: 8, NodesMax: 245,
		AvgDegree: 2.09, LabelSkew: 1.8,
		Structure: StructureMolecular, Seed: 101,
	}
}

// PDBS emulates the protein/DNA/RNA structure set: 600 large sparse graphs
// over 10 labels (Table 1 row 2).
func PDBS() Spec {
	// Label skew is mild: PDBS vertices are residue/base types whose
	// frequencies are fairly balanced — and near-homogeneous labels would
	// also make subgraph isomorphism pathologically hard in a way the real
	// data is not.
	return Spec{
		Name: "PDBS", NumGraphs: 600, Labels: 10,
		NodesMean: 2939, NodesStd: 3217, NodesMin: 60, NodesMax: 16431,
		AvgDegree: 2.13, LabelSkew: 1.05, Seed: 102,
	}
}

// PPI emulates the protein-interaction networks: 20 large dense graphs over
// 46 labels (Table 1 row 3).
func PPI() Spec {
	return Spec{
		Name: "PPI", NumGraphs: 20, Labels: 46,
		NodesMean: 4943, NodesStd: 2717, NodesMin: 500, NodesMax: 10186,
		AvgDegree: 9.23, LabelSkew: 1.1, Seed: 103,
	}
}

// Synthetic emulates the generator-produced dense set: 1000 graphs over 20
// labels with near-constant edge counts (Table 1 row 4).
func Synthetic() Spec {
	return Spec{
		Name: "Synthetic", NumGraphs: 1000, Labels: 20,
		NodesMean: 892, NodesStd: 417, NodesMin: 100, NodesMax: 7135,
		AvgDegree: 19.52, LabelSkew: 0, Seed: 104,
	}
}

// Scaled returns a copy with the graph count scaled by countFrac and graph
// sizes scaled by sizeFrac (floors keep tiny scales meaningful). Density,
// label domain and skew are preserved — they are what the algorithms see.
func (s Spec) Scaled(countFrac, sizeFrac float64) Spec {
	out := s
	out.NumGraphs = max(4, int(math.Round(float64(s.NumGraphs)*countFrac)))
	out.NodesMean = math.Max(6, s.NodesMean*sizeFrac)
	out.NodesStd = s.NodesStd * sizeFrac
	out.NodesMin = max(3, int(float64(s.NodesMin)*sizeFrac))
	out.NodesMax = max(out.NodesMin+1, int(float64(s.NodesMax)*sizeFrac))
	// dense specs stay dense, but a graph cannot exceed complete-graph
	// degree; Generate clamps per-graph.
	return out
}

// WithDegree returns a copy with the average degree scaled by frac (floor
// 2.0 to keep graphs connected-tree-or-denser). Used by the experiment
// harness: exhaustive path enumeration on the paper's densest graphs
// (degree ≈ 19.5) is the known memory wall of Grapes-style indexes, so
// bench-scale dense datasets keep "dense relative to AIDS" while staying
// enumerable; see DESIGN.md.
func (s Spec) WithDegree(frac float64) Spec {
	out := s
	out.AvgDegree = math.Max(2.0, s.AvgDegree*frac)
	return out
}

// Generate produces the dataset deterministically from its seed.
func Generate(s Spec) []*graph.Graph {
	rng := rand.New(rand.NewSource(s.Seed))
	labelPicker := newLabelPicker(rng, s.Labels, s.LabelSkew)
	db := make([]*graph.Graph, s.NumGraphs)
	for i := range db {
		n := sampleNodes(rng, s)
		if s.Structure == StructureMolecular {
			db[i] = generateMolecular(rng, n, s.AvgDegree, labelPicker)
		} else {
			db[i] = generateConnected(rng, n, s.AvgDegree, labelPicker)
		}
		if s.EdgeLabels > 1 {
			applyEdgeLabels(rng, db[i], s.EdgeLabels)
		}
		db[i].ID = i
	}
	return db
}

// applyEdgeLabels relabels every edge with a bond type in 1..domain,
// biased towards 1 ("single bond") as in molecule data.
func applyEdgeLabels(rng *rand.Rand, g *graph.Graph, domain int) {
	type e struct{ u, v int }
	var edges []e
	g.Edges(func(u, v int) { edges = append(edges, e{u, v}) })
	relabeled := graph.New(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		relabeled.AddVertex(g.Label(v))
	}
	for _, x := range edges {
		l := graph.Label(1)
		if rng.Float64() < 0.25 {
			l = graph.Label(2 + rng.Intn(domain-1))
		}
		relabeled.AddEdgeLabeled(x.u, x.v, l)
	}
	relabeled.ID = g.ID
	g.CopyFrom(relabeled)
}

// sampleNodes draws a truncated-normal vertex count.
func sampleNodes(rng *rand.Rand, s Spec) int {
	for tries := 0; tries < 64; tries++ {
		n := int(math.Round(rng.NormFloat64()*s.NodesStd + s.NodesMean))
		if n >= s.NodesMin && n <= s.NodesMax {
			return n
		}
	}
	return max(s.NodesMin, int(s.NodesMean))
}

// generateConnected builds a connected labeled graph with n vertices and
// approximately n*avgDeg/2 edges: a uniform random recursive tree for
// connectivity, then uniformly random extra edges for density.
func generateConnected(rng *rand.Rand, n int, avgDeg float64, labels func() graph.Label) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels())
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	target := int(math.Round(float64(n) * avgDeg / 2))
	maxEdges := n * (n - 1) / 2
	if target > maxEdges {
		target = maxEdges
	}
	// add random extra edges until the target edge count is reached
	for tries := 0; g.NumEdges() < target && tries < 50*target+100; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// generateMolecular builds a connected labeled graph shaped like a small
// organic molecule: a chain-biased spanning tree (long backbones, light
// branching) closed into 5/6-membered rings by short random walks until the
// target density is reached.
func generateMolecular(rng *rand.Rand, n int, avgDeg float64, labels func() graph.Label) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddVertex(labels())
	}
	// chain-biased tree: extend the previous atom with high probability
	for i := 1; i < n; i++ {
		parent := i - 1
		if rng.Float64() > 0.72 {
			parent = rng.Intn(i)
		}
		g.AddEdge(i, parent)
	}
	target := int(math.Round(float64(n) * avgDeg / 2))
	maxEdges := n * (n - 1) / 2
	if target > maxEdges {
		target = maxEdges
	}
	// ring closures: walk 4-5 steps from a random atom and bond the ends,
	// forming 5- and 6-membered rings like benzene/cyclopentane motifs
	for tries := 0; g.NumEdges() < target && tries < 60*target+100; tries++ {
		u := rng.Intn(n)
		v := randomWalkEnd(rng, g, u, 4+rng.Intn(2))
		if v >= 0 && v != u {
			g.AddEdge(u, v)
		}
	}
	// fall back to random edges if walks cannot reach density (tiny graphs)
	for tries := 0; g.NumEdges() < target && tries < 50*target+100; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// randomWalkEnd walks `steps` edges from u without immediate backtracking
// and returns the final vertex, or -1 if the walk gets stuck.
func randomWalkEnd(rng *rand.Rand, g *graph.Graph, u, steps int) int {
	prev, cur := -1, u
	for s := 0; s < steps; s++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			return -1
		}
		next := int(nbrs[rng.Intn(len(nbrs))])
		if next == prev && len(nbrs) > 1 {
			next = int(nbrs[rng.Intn(len(nbrs))])
		}
		prev, cur = cur, next
	}
	return cur
}

// newLabelPicker returns a label sampler: Zipf-skewed when skew > 1 (a few
// labels dominate, like C/H/O in molecules), uniform otherwise.
func newLabelPicker(rng *rand.Rand, labels int, skew float64) func() graph.Label {
	if labels <= 1 {
		return func() graph.Label { return 0 }
	}
	if skew <= 1 {
		return func() graph.Label { return graph.Label(rng.Intn(labels)) }
	}
	z := rand.NewZipf(rng, skew, 1, uint64(labels-1))
	return func() graph.Label { return graph.Label(z.Uint64()) }
}

// Characteristics aggregates the Table 1 statistics of a dataset.
type Characteristics struct {
	Name        string
	Labels      int // distinct vertex labels present
	Graphs      int
	AvgDegree   float64
	Nodes       stats.Summary
	Edges       stats.Summary
	Connected   int // number of connected graphs
	SizeBytesDB int // total in-memory dataset footprint
}

// Measure computes the Table 1 characteristics of db.
func Measure(name string, db []*graph.Graph) Characteristics {
	c := Characteristics{Name: name, Graphs: len(db)}
	labelSet := map[graph.Label]struct{}{}
	nodes := make([]float64, len(db))
	edges := make([]float64, len(db))
	var totalDeg, totalV float64
	for i, g := range db {
		nodes[i] = float64(g.NumVertices())
		edges[i] = float64(g.NumEdges())
		totalDeg += 2 * float64(g.NumEdges())
		totalV += float64(g.NumVertices())
		for _, l := range g.LabelSet() {
			labelSet[l] = struct{}{}
		}
		if g.IsConnected() {
			c.Connected++
		}
		c.SizeBytesDB += g.SizeBytes()
	}
	c.Labels = len(labelSet)
	c.Nodes = stats.Summarize(nodes)
	c.Edges = stats.Summarize(edges)
	if totalV > 0 {
		c.AvgDegree = totalDeg / totalV
	}
	return c
}

// String renders one Table 1 row.
func (c Characteristics) String() string {
	return fmt.Sprintf("%s: labels=%d graphs=%d avgdeg=%.2f nodes(avg=%.0f std=%.0f max=%.0f) edges(avg=%.0f std=%.0f max=%.0f)",
		c.Name, c.Labels, c.Graphs, c.AvgDegree,
		c.Nodes.Mean, c.Nodes.Std, c.Nodes.Max,
		c.Edges.Mean, c.Edges.Std, c.Edges.Max)
}
