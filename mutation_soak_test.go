package igq

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// bruteAnswer is the index-free oracle: every dataset graph is tested.
func bruteAnswer(q *Graph, db []*Graph) []int32 {
	var out []int32
	for i, g := range db {
		if IsSubgraph(q, g) {
			out = append(out, int32(i))
		}
	}
	return out
}

func soakGraph(rng *rand.Rand, n int, labels int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddVertex(Label(rng.Intn(labels)))
	}
	for u := 1; u < n; u++ { // spanning tree + extras: connected-ish
		g.AddEdge(u, rng.Intn(u))
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestMutationSoakDifferential is the property-based soak of the issue:
// randomized interleavings of AddGraphs / RemoveGraphs / Query / engine
// Save→LoadEngine / O(delta) journal appends, run across seeds × shard
// layouts × methods, asserting at every step that answers match the
// brute-force oracle over a mirrored reference dataset, and periodically
// that the engine is equivalent (answers + no-cache stats) to a
// from-scratch rebuild and that the journaled on-disk snapshot loads back
// to the same index.
func TestMutationSoakDifferential(t *testing.T) {
	type layout struct {
		method  MethodKind
		shards  int
		workers int
	}
	layouts := []layout{{GGSX, 1, 1}, {GGSX, 4, 2}, {Grapes, 2, 2}}
	for _, lo := range layouts {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%v/shards=%d/seed=%d", lo.method, lo.shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*100 + int64(lo.shards)))
				ctx := context.Background()
				db := make([]*Graph, 12)
				for i := range db {
					db[i] = soakGraph(rng, 5+rng.Intn(5), 3)
				}
				opt := EngineOptions{
					Method: lo.method, MaxPathLen: 3, CacheSize: 15, Window: 3,
					Shards: lo.shards, BuildWorkers: lo.workers,
				}
				eng, err := NewEngine(db, opt)
				if err != nil {
					t.Fatal(err)
				}
				refDB := append([]*Graph(nil), db...)

				snapPath := filepath.Join(t.TempDir(), "soak.idx")
				sf, err := os.Create(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.SaveIndex(sf); err != nil {
					t.Fatal(err)
				}
				sf.Close()
				appendDelta := func() {
					f, err := os.OpenFile(snapPath, os.O_RDWR, 0)
					if err != nil {
						t.Fatal(err)
					}
					if err := eng.AppendIndexDelta(f); err != nil {
						t.Fatalf("AppendIndexDelta: %v", err)
					}
					f.Close()
				}

				probe := func(step int) {
					q := soakGraph(rng, 3+rng.Intn(3), 3)
					res, err := eng.Query(ctx, q)
					if err != nil {
						t.Fatalf("step %d: query: %v", step, err)
					}
					if want := bruteAnswer(q, refDB); !reflect.DeepEqual(res.IDs, want) {
						t.Fatalf("step %d: cached answer %v != oracle %v", step, res.IDs, want)
					}
				}

				for step := 0; step < 30; step++ {
					switch r := rng.Intn(10); {
					case r < 4: // query (cache on, admissions and flushes included)
						probe(step)
					case r < 7: // append
						gs := make([]*Graph, 1+rng.Intn(2))
						for i := range gs {
							gs[i] = soakGraph(rng, 5+rng.Intn(4), 3)
						}
						if err := eng.AddGraphs(ctx, gs); err != nil {
							t.Fatalf("step %d: AddGraphs: %v", step, err)
						}
						refDB = append(append([]*Graph(nil), refDB...), gs...)
						appendDelta()
					case r < 9: // swap-remove (mirror the documented semantics)
						if len(refDB) < 5 {
							probe(step)
							continue
						}
						p := rng.Intn(len(refDB))
						if err := eng.RemoveGraphs(ctx, []int{p}); err != nil {
							t.Fatalf("step %d: RemoveGraphs: %v", step, err)
						}
						last := len(refDB) - 1
						nd := append([]*Graph(nil), refDB...)
						if p != last {
							nd[p] = nd[last]
						}
						refDB = nd[:last]
						appendDelta()
					default: // mid-sequence save→load swap of the whole engine
						var err error
						dir := t.TempDir()
						p := filepath.Join(dir, "eng.igq")
						f, err := os.Create(p)
						if err != nil {
							t.Fatal(err)
						}
						if err := eng.Save(f); err != nil {
							t.Fatalf("step %d: Save: %v", step, err)
						}
						f.Close()
						lf, err := os.Open(p)
						if err != nil {
							t.Fatal(err)
						}
						eng, err = LoadEngine(lf, refDB, opt)
						lf.Close()
						if err != nil {
							t.Fatalf("step %d: LoadEngine: %v", step, err)
						}
					}

					if !reflect.DeepEqual(eng.Dataset(), refDB) {
						t.Fatalf("step %d: engine dataset diverges from reference", step)
					}

					if step%6 == 5 {
						// Rebuild equivalence: answers + no-cache stats.
						fresh, err := NewEngine(refDB, opt)
						if err != nil {
							t.Fatal(err)
						}
						for i := 0; i < 4; i++ {
							q := soakGraph(rng, 3+rng.Intn(3), 3)
							got, err := eng.Query(ctx, q, WithoutCache())
							if err != nil {
								t.Fatal(err)
							}
							want, err := fresh.Query(ctx, q, WithoutCache())
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got.IDs, want.IDs) || got.Stats != want.Stats {
								t.Fatalf("step %d: no-cache divergence from rebuild:\ngot  %v %+v\nwant %v %+v",
									step, got.IDs, got.Stats, want.IDs, want.Stats)
							}
						}

						// Journaled snapshot equivalence: load the delta file
						// into a fresh engine over the current dataset.
						loaded, err := NewEngine(refDB, opt)
						if err != nil {
							t.Fatal(err)
						}
						lf, err := os.Open(snapPath)
						if err != nil {
							t.Fatal(err)
						}
						_, err = loaded.LoadIndex(lf)
						lf.Close()
						if err != nil {
							t.Fatalf("step %d: loading journaled index: %v", step, err)
						}
						for i := 0; i < 4; i++ {
							q := soakGraph(rng, 3+rng.Intn(3), 3)
							got, err := loaded.Query(ctx, q, WithoutCache())
							if err != nil {
								t.Fatal(err)
							}
							want := bruteAnswer(q, refDB)
							if !reflect.DeepEqual(got.IDs, want) {
								t.Fatalf("step %d: journal-loaded index answers %v != oracle %v", step, got.IDs, want)
							}
						}
					}
				}
			})
		}
	}
}
