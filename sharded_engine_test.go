package igq

import (
	"context"
	"reflect"
	"testing"
)

// TestEngineShardedBuildDifferential is the end-to-end leg of the sharded
// postings store's differential suite: an engine built with explicit shard
// and build-worker counts must answer an entire workload identically to the
// default sequential configuration, for both path methods, with the cache
// exercising flushes (sharded Isub/Isuper rebuilds) along the way.
func TestEngineShardedBuildDifferential(t *testing.T) {
	db := smallDB(t)
	queries := GenerateWorkload(db, WorkloadSpec{NumQueries: 60, Seed: 7})
	ctx := context.Background()

	for _, method := range []MethodKind{GGSX, Grapes} {
		ref, err := NewEngine(db, EngineOptions{
			Method: method, Shards: 1, BuildWorkers: 1,
			CacheSize: 20, Window: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		shd, err := NewEngine(db, EngineOptions{
			Method: method, Shards: 8, BuildWorkers: 8,
			CacheSize: 20, Window: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Same shard geometry, sequential build: the parallel build must be
		// bit-identical, which the (deterministic) size accounting reflects.
		seq, err := NewEngine(db, EngineOptions{
			Method: method, Shards: 8, BuildWorkers: 1,
			CacheSize: 20, Window: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		mSeq, _ := seq.IndexSizeBytes()
		mShd, _ := shd.IndexSizeBytes()
		if mSeq != mShd {
			t.Errorf("%v: method index size %d != %d — parallel build not bit-identical", method, mShd, mSeq)
		}
		for i, q := range queries {
			a, err := ref.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := shd.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.IDs, b.IDs) {
				t.Fatalf("%v query %d: sharded engine answered %v, sequential %v", method, i, b.IDs, a.IDs)
			}
		}
	}
}
