package igq

import (
	"bytes"
	"context"

	"reflect"
	"testing"

	"repro/internal/persistio"
)

// fuzzDB is a tiny fixed dataset for the snapshot-decoder fuzz targets.
func fuzzDB() []*Graph {
	mk := func(labels []Label, edges [][2]int) *Graph {
		g := NewGraph(len(labels))
		for _, l := range labels {
			g.AddVertex(l)
		}
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
		return g
	}
	return []*Graph{
		mk([]Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}}),
		mk([]Label{1, 1, 0, 2}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
		mk([]Label{2, 0}, [][2]int{{0, 1}}),
		mk([]Label{0, 2, 1, 1}, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
	}
}

// FuzzLoadEngine feeds arbitrary bytes — seeded with valid combined engine
// snapshots (with and without the cache section, GGSX and Grapes) plus
// truncations and bit flips — into the whole restore stack: engine
// envelope, index envelope, trie segments, journal sections, gob cache.
// Every outcome must be a clean error or a working engine; never a panic
// or a runaway allocation.
//
// It also extends PR 4's rollback guarantee to arbitrary corruption: after
// a failed Engine.LoadIndex on a *live* engine, the engine must answer
// exactly as before and the shared feature dictionary must be
// byte-identical.
func FuzzLoadEngine(f *testing.F) {
	db := fuzzDB()
	for _, opt := range []EngineOptions{
		{Method: GGSX, MaxPathLen: 3, CacheSize: 4, Window: 1},
		{Method: Grapes, MaxPathLen: 3, DisableCache: true},
	} {
		eng, err := NewEngine(db, opt)
		if err != nil {
			f.Fatal(err)
		}
		if !opt.DisableCache {
			// Cache one query so the snapshot carries a cache section.
			if _, err := eng.Query(context.Background(), ExtractQuery(db[1], 0, 2)); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:len(buf.Bytes())*2/3])
		flip := append([]byte(nil), buf.Bytes()...)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip)

		// An index-only snapshot seed (the LoadIndex grammar).
		var ibuf bytes.Buffer
		if err := eng.SaveIndex(&ibuf); err != nil {
			f.Fatal(err)
		}
		f.Add(ibuf.Bytes())

		// Journaled snapshot seeds: a delta append on top of the base,
		// intact and torn at several depths — the tail-recovery grammar.
		mf := persistio.NewMemFile()
		if err := eng.SaveIndex(mf); err != nil {
			f.Fatal(err)
		}
		if err := eng.AddGraphs(context.Background(), fuzzDB()); err != nil {
			f.Fatal(err)
		}
		if err := eng.AppendIndexDelta(mf); err != nil {
			f.Fatal(err)
		}
		jb := append([]byte(nil), mf.Bytes()...)
		f.Add(jb)
		f.Add(jb[:len(jb)-1]) // complete section, missing terminator
		f.Add(jb[:len(jb)-5]) // torn mid-section
		f.Add(jb[:len(jb)-(len(jb)-ibuf.Len())/2])

		// A combined engine snapshot torn at the tail.
		f.Add(buf.Bytes()[:len(buf.Bytes())-2])
	}

	// Seeds with v3 container segments of all three kinds: a dataset dense
	// enough that shared features persist as run intervals (present in every
	// graph), bitmap words (present in every other graph) and sparse arrays
	// (the outlier graphs) inside the engine's index envelope — plus a
	// truncation and a bit flip of each container-bearing snapshot.
	denseDB := make([]*Graph, 0, 120)
	for i := 0; i < 120; i++ {
		g := NewGraph(3)
		g.AddVertex(0)
		g.AddVertex(1)
		if i%2 == 0 {
			g.AddVertex(2) // even graphs only: bitmap-shaped postings
		} else {
			g.AddVertex(1)
		}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		denseDB = append(denseDB, g)
	}
	denseDB[7].AddVertex(3) // a label only a couple of graphs carry: array
	denseDB[90].AddVertex(3)
	denseEng, err := NewEngine(denseDB, EngineOptions{Method: GGSX, MaxPathLen: 3, DisableCache: true})
	if err != nil {
		f.Fatal(err)
	}
	var dense bytes.Buffer
	if err := denseEng.SaveIndex(&dense); err != nil {
		f.Fatal(err)
	}
	f.Add(dense.Bytes())
	f.Add(dense.Bytes()[:len(dense.Bytes())*3/4]) // torn mid-container
	dflip := append([]byte(nil), dense.Bytes()...)
	dflip[len(dflip)*2/3] ^= 0x04 // flip inside the segment area
	f.Add(dflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		db := fuzzDB()
		opt := EngineOptions{Method: GGSX, MaxPathLen: 3, CacheSize: 4, Window: 1}

		// Lazy leg: the mapped loader, with its deferred per-shard decodes
		// forced back in via MaterializeIndex, must agree with the streaming
		// loader on accept/reject and on the recovery report — corruption it
		// defers to fault-in has to surface by materialisation, and it must
		// never reject bytes the streaming loader accepts.
		leng, lrep, lerr := loadEngineLazy(bytes.NewReader(data), db, opt, 0)
		if lerr == nil {
			lerr = leng.MaterializeIndex()
		}

		// Whole-engine restore: error or success (possibly with a salvaged
		// torn tail), never a panic, never a half-applied state.
		eng, rep, err := LoadEngineReport(bytes.NewReader(data), db, opt)
		if (err == nil) != (lerr == nil) {
			t.Fatalf("lazy/eager accept disagreement: eager err=%v, lazy err=%v", err, lerr)
		}
		if err == nil {
			if (rep.RecoveredTail == nil) != (lrep.RecoveredTail == nil) ||
				(rep.RecoveredTail != nil && *rep.RecoveredTail != *lrep.RecoveredTail) ||
				rep.CacheDiscarded != lrep.CacheDiscarded {
				t.Fatalf("lazy/eager report disagreement: eager %+v, lazy %+v", rep, lrep)
			}
			// A snapshot the loader accepts must actually serve — and both
			// loaders must serve the same answers.
			er, qerr := eng.Query(context.Background(), ExtractQuery(db[0], 0, 2), WithoutCache())
			if qerr != nil {
				t.Fatalf("loaded engine cannot serve: %v", qerr)
			}
			lr, qerr := leng.Query(context.Background(), ExtractQuery(db[0], 0, 2), WithoutCache())
			if qerr != nil {
				t.Fatalf("lazily loaded engine cannot serve: %v", qerr)
			}
			if !reflect.DeepEqual(er.IDs, lr.IDs) {
				t.Fatalf("lazy load answers %v, eager %v", lr.IDs, er.IDs)
			}
			if rep.RecoveredTail != nil {
				// Self-heal idempotence: re-saving the recovered engine
				// must yield a clean snapshot (this is what LoadEngineFile
				// writes back to disk when it repairs).
				var heal bytes.Buffer
				if err := eng.Save(&heal); err != nil {
					t.Fatalf("saving recovered engine: %v", err)
				}
				if _, rep2, err := LoadEngineReport(bytes.NewReader(heal.Bytes()), db, opt); err != nil || rep2.RecoveredTail != nil {
					t.Fatalf("re-save of recovered engine is not clean: rep=%+v err=%v", rep2, err)
				}
			}
		}

		// Live-index rollback under arbitrary corruption.
		eng, err = NewEngine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		probe := ExtractQuery(db[1], 0, 3)
		before, err := eng.Query(context.Background(), probe, WithoutCache())
		if err != nil {
			t.Fatal(err)
		}
		sizeBefore, _ := eng.IndexSizeBytes()
		if _, lerr := eng.LoadIndex(bytes.NewReader(data)); lerr != nil {
			after, err := eng.Query(context.Background(), probe, WithoutCache())
			if err != nil {
				t.Fatalf("post-rollback query: %v", err)
			}
			if !reflect.DeepEqual(after.IDs, before.IDs) || after.Stats != before.Stats {
				t.Fatalf("failed LoadIndex changed answers: %v/%+v -> %v/%+v",
					before.IDs, before.Stats, after.IDs, after.Stats)
			}
			if sizeAfter, _ := eng.IndexSizeBytes(); sizeAfter != sizeBefore {
				t.Fatalf("failed LoadIndex changed index footprint: %d -> %d", sizeBefore, sizeAfter)
			}
		}
	})
}

// TestFuzzSeedsRoundTrip keeps the fuzz seeds honest in plain test runs:
// the valid seeds must load successfully.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	db := fuzzDB()
	for i, opt := range []EngineOptions{
		{Method: GGSX, MaxPathLen: 3, CacheSize: 4, Window: 1},
		{Method: Grapes, MaxPathLen: 3, DisableCache: true},
	} {
		eng, err := NewEngine(db, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadEngine(bytes.NewReader(buf.Bytes()), db, opt); err != nil {
			t.Fatalf("seed %d does not round-trip: %v", i, err)
		}
	}
	// The dense container-bearing index seed must round-trip too: build the
	// same dataset shape as the fuzz seeds and reload its index snapshot.
	denseDB := make([]*Graph, 0, 120)
	for i := 0; i < 120; i++ {
		g := NewGraph(3)
		g.AddVertex(0)
		g.AddVertex(1)
		if i%2 == 0 {
			g.AddVertex(2)
		} else {
			g.AddVertex(1)
		}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		denseDB = append(denseDB, g)
	}
	opt := EngineOptions{Method: GGSX, MaxPathLen: 3, DisableCache: true}
	eng, err := NewEngine(denseDB, opt)
	if err != nil {
		t.Fatal(err)
	}
	var ibuf bytes.Buffer
	if err := eng.SaveIndex(&ibuf); err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(denseDB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.LoadIndex(bytes.NewReader(ibuf.Bytes())); err != nil {
		t.Fatalf("dense container index seed does not round-trip: %v", err)
	}
	q := ExtractQuery(denseDB[0], 0, 3)
	a, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng2.Query(context.Background(), q.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) {
		t.Errorf("dense index answers diverge after reload: %v vs %v", a.IDs, b.IDs)
	}
}
