package igq

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/persistio"
	"repro/internal/trie"
)

// Lazy engine loading: LoadEngineFile(..., WithLazyLoad(budget)) maps the
// snapshot instead of decoding it, so the engine binds its first query in
// O(touched shards) time and can serve an index bigger than RAM under a
// resident-byte budget. See the package comment ("Serving indexes bigger
// than RAM") for the model and its trade-offs.

// EngineLoadOption customises one LoadEngineFile call (as opposed to
// EngineOptions, which configure the engine itself).
type EngineLoadOption func(*engineLoadConfig)

type engineLoadConfig struct {
	lazy   bool
	budget int64
}

// WithLazyLoad makes LoadEngineFile open the snapshot lazily: the header,
// dictionary, segment directory and journal tail are read eagerly (and any
// torn tail recovered exactly as in an eager load), but posting segments
// are decoded only when a query first touches their shard. budgetBytes
// bounds the decoded bytes kept resident (least-recently-touched shards are
// evicted and transparently re-decoded — with their checksums re-verified —
// on the next touch); 0 means unbounded.
//
// The snapshot file backs the engine for as long as any shard is
// non-resident: it must not be modified, and Engine.Close releases it.
// Corruption confined to one shard's segment surfaces on first touch as a
// contained *PanicError (wrapping trie.ErrCorrupt) on queries routed to it;
// other shards keep answering. Methods without lazy support (anything but
// GGSX and Grapes) fall back to a plain eager load.
func WithLazyLoad(budgetBytes int64) EngineLoadOption {
	return func(c *engineLoadConfig) {
		c.lazy = true
		c.budget = budgetBytes
	}
}

// errLazyUnsupported reports a method that cannot defer segment decoding;
// LoadEngineFile falls back to the eager path on it.
var errLazyUnsupported = errors.New("igq: method does not support lazy index loading")

// loadEngineLazy is LoadEngineReport over a random-access snapshot source,
// deferring posting-segment decodes to first touch. src must stay open and
// immutable while any shard is non-resident; when src is an io.Closer the
// returned engine owns it (Engine.Close).
func loadEngineLazy(src trie.RandomAccessFile, db []*Graph, opt EngineOptions, budget int64) (*Engine, LoadReport, error) {
	if len(db) == 0 {
		return nil, LoadReport{}, errors.New("igq: empty dataset")
	}
	opt = opt.normalized()
	cr := &index.CountingScanner{R: index.AsByteScanner(io.NewSectionReader(src, 0, src.Size()))}
	var magic [len(engineMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot magic: %w", err)
	}
	if string(magic[:]) != engineMagic {
		return nil, LoadReport{}, fmt.Errorf("igq: not an engine snapshot (magic %q)", magic)
	}
	version, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot version: %w", err)
	}
	if version < 1 || version > engineSnapshotVersion {
		return nil, LoadReport{}, fmt.Errorf("igq: engine snapshot version %d unsupported (this build reads ≤ %d)",
			version, engineSnapshotVersion)
	}
	flags, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, LoadReport{}, fmt.Errorf("igq: reading snapshot flags: %w", err)
	}
	m, err := newMethod(opt)
	if err != nil {
		return nil, LoadReport{}, err
	}
	lz, ok := m.(index.LazyLoadable)
	if !ok {
		return nil, LoadReport{}, fmt.Errorf("%w: %s", errLazyUnsupported, m.Name())
	}
	headerBytes := cr.N
	idxRep, err := lz.LoadIndexLazy(
		io.NewSectionReader(src, headerBytes, src.Size()-headerBytes), db, budget)
	if err != nil {
		return nil, LoadReport{}, err
	}
	rep := LoadReport{RecoveredTail: tailRecoveryFrom(idxRep.RecoveredTail, headerBytes)}
	if cf, ok := m.(index.CountFilterer); ok {
		opt.MaxPathLen = cf.FeatureMaxPathLen() // the snapshot's feature length wins
	}
	e := &Engine{superQ: opt.Supergraph, opt: opt}
	e.view.Store(&engineView{db: db, m: m})
	if c, ok := src.(io.Closer); ok {
		e.lazySrc = c
	}
	if !opt.DisableCache {
		if flags&engineFlagCache != 0 && rep.RecoveredTail == nil {
			// The index section reported its exact extent, so the cache
			// section starts right after it.
			cacheOff := headerBytes + idxRep.Bytes
			ig, err := core.Load(index.AsByteScanner(io.NewSectionReader(src, cacheOff, src.Size()-cacheOff)),
				m, db, e.coreOptions())
			if err != nil {
				return nil, LoadReport{}, fmt.Errorf("igq: restoring cache: %w", err)
			}
			e.ig.Store(ig)
		} else {
			if flags&engineFlagCache != 0 && rep.RecoveredTail != nil {
				rep.CacheDiscarded = true // the section sits beyond the tear
			}
			e.ig.Store(core.New(m, db, e.coreOptions()))
		}
	}
	return e, rep, nil
}

// loadEngineFileLazy opens path through persistio.OpenMapped and serves it
// lazily, with the same on-disk self-healing as the eager LoadEngineFile: a
// recovered tail is compacted back out (which materialises the index) and
// the mapping of the superseded file is released.
func loadEngineFileLazy(path string, db []*Graph, opt EngineOptions, budget int64) (*Engine, LoadReport, error) {
	src, err := persistio.OpenMapped(path)
	if err != nil {
		return nil, LoadReport{}, err
	}
	e, rep, err := loadEngineLazy(src, db, opt, budget)
	if err != nil {
		src.Close()
		if errors.Is(err, errLazyUnsupported) {
			return loadEngineFileEager(path, db, opt)
		}
		return nil, rep, err
	}
	if rep.RecoveredTail != nil {
		// Re-saving reads every shard through the mapping (WriteTo
		// materialises), so repair before closing it.
		if err := SaveEngineFile(path, e); err != nil {
			e.Close()
			return nil, rep, fmt.Errorf("igq: repairing snapshot %s: %w", path, err)
		}
		rep.Repaired = true
		if err := e.Close(); err != nil {
			return nil, rep, err
		}
	}
	return e, rep, nil
}

// Close releases the snapshot mapping backing a lazily loaded engine. It is
// a no-op for eagerly loaded or freshly built engines, and for lazy engines
// whose index has been fully materialised the mapping is simply returned to
// the OS. Closing while shards are still non-resident invalidates further
// cold queries (they fail with a contained *PanicError); call
// MaterializeIndex first to keep serving without the file.
func (e *Engine) Close() error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	return e.closeLazySrcLocked()
}

func (e *Engine) closeLazySrcLocked() error {
	if e.lazySrc == nil {
		return nil
	}
	src := e.lazySrc
	e.lazySrc = nil
	return src.Close()
}

// MaterializeIndex faults in every remaining shard of a lazily loaded
// index and releases the backing snapshot mapping, leaving the engine in
// exactly the state an eager load would have produced. No-op (and nil) when
// nothing is lazy. Mutating operations (AddGraphs, RemoveGraphs) call the
// materialisation step implicitly.
func (e *Engine) MaterializeIndex() error {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if err := e.materializeIndexLocked(); err != nil {
		return err
	}
	return e.closeLazySrcLocked()
}

// materializeIndexLocked forces the dataset index fully resident (caller
// holds mutMu). The mapping is left open: mutation paths keep it so a
// subsequent load can reuse it; MaterializeIndex closes it.
func (e *Engine) materializeIndexLocked() error {
	if lz, ok := e.view.Load().m.(index.LazyLoadable); ok {
		if err := lz.Materialize(); err != nil {
			return fmt.Errorf("igq: materialising lazy index: %w", err)
		}
	}
	return nil
}

// Residency reports how much of the dataset index is decoded in memory.
// For lazily loaded engines the counters move as queries fault shards in
// and the budget evicts them; eager engines report Lazy == false. Cheap to
// sample at any time (atomic reads; no query-path cost).
func (e *Engine) Residency() trie.Residency {
	if rr, ok := e.view.Load().m.(index.ResidencyReporter); ok {
		return rr.Residency()
	}
	return trie.Residency{}
}
