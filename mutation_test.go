package igq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/index"
)

// mutationRef mirrors the engine's dataset through the canonical op
// semantics, so tests can rebuild a reference engine on the final dataset.
type mutationRef struct {
	db []*Graph
}

func (r *mutationRef) add(gs []*Graph) {
	r.db = append(append([]*Graph(nil), r.db...), gs...)
}

func (r *mutationRef) remove(t *testing.T, positions []int) {
	t.Helper()
	out, _, _, err := index.SwapRemove(r.db, positions)
	if err != nil {
		t.Fatal(err)
	}
	r.db = out
}

func randPattern(rng *rand.Rand, db []*Graph) *Graph {
	g := db[rng.Intn(len(db))]
	return ExtractQuery(g, rng.Intn(max(1, g.NumVertices())), 2+rng.Intn(4))
}

// assertEquivalent pins the mutated engine to a from-scratch engine on the
// final dataset: the datasets themselves, method SizeBytes, and — per
// probe query — answers and full no-cache stats must be identical.
func assertEquivalent(t *testing.T, step string, mutated, fresh *Engine, probes []*Graph) {
	t.Helper()
	if !reflect.DeepEqual(mutated.Dataset(), fresh.Dataset()) {
		t.Fatalf("%s: dataset generations diverge", step)
	}
	gotM, _ := mutated.IndexSizeBytes()
	wantM, _ := fresh.IndexSizeBytes()
	if gotM != wantM {
		t.Fatalf("%s: method SizeBytes %d != rebuilt %d", step, gotM, wantM)
	}
	ctx := context.Background()
	for qi, q := range probes {
		got, err := mutated.Query(ctx, q, WithoutCache())
		if err != nil {
			t.Fatalf("%s probe %d: %v", step, qi, err)
		}
		want, err := fresh.Query(ctx, q, WithoutCache())
		if err != nil {
			t.Fatalf("%s probe %d (fresh): %v", step, qi, err)
		}
		if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("%s probe %d: no-cache result diverges\ngot  IDs=%v stats=%+v\nwant IDs=%v stats=%+v",
				step, qi, got.IDs, got.Stats, want.IDs, want.Stats)
		}
		// With the cache on, answers (not stats — the cache histories
		// differ) must still be exact: Theorems 1 and 2 over the mutated
		// dataset.
		cached, err := mutated.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s probe %d (cached): %v", step, qi, err)
		}
		if !reflect.DeepEqual(cached.IDs, want.IDs) {
			t.Fatalf("%s probe %d: cached answer %v != true answer %v", step, qi, cached.IDs, want.IDs)
		}
	}
}

// TestEngineMutationDifferential drives an add/remove/query history through
// a cache-enabled engine across (method, shards, workers) and pins it after
// every mutation to an engine rebuilt from scratch on the final dataset —
// including across a save→load cycle mid-sequence.
func TestEngineMutationDifferential(t *testing.T) {
	cases := []struct {
		method  MethodKind
		shards  int
		workers int
	}{
		{GGSX, 1, 1},
		{GGSX, 8, 4},
		{Grapes, 1, 2},
		{Grapes, 4, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v/shards=%d/workers=%d", tc.method, tc.shards, tc.workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(41 + tc.shards)))
			base := GenerateDataset(AIDSSpec().Scaled(0.002, 1))
			extra := GenerateDataset(PDBSSpec().Scaled(0.02, 0.3))
			if len(extra) < 8 {
				t.Fatalf("need at least 8 extra graphs, got %d", len(extra))
			}
			opt := EngineOptions{
				Method: tc.method, CacheSize: 30, Window: 4,
				Shards: tc.shards, BuildWorkers: tc.workers,
			}
			eng, err := NewEngine(base, opt)
			if err != nil {
				t.Fatal(err)
			}
			ref := &mutationRef{db: base}
			ctx := context.Background()

			// Warm the cache so mutation has committed entries and a pending
			// window to patch.
			for i := 0; i < 10; i++ {
				if _, err := eng.Query(ctx, randPattern(rng, ref.db)); err != nil {
					t.Fatal(err)
				}
			}

			step := 0
			mutate := func() {
				step++
				if step%3 == 2 && len(ref.db) > 6 {
					ps := []int{rng.Intn(len(ref.db)), 0}
					if ps[0] == 0 {
						ps = ps[:1]
					}
					if err := eng.RemoveGraphs(ctx, ps); err != nil {
						t.Fatal(err)
					}
					ref.remove(t, ps)
				} else {
					gs := extra[:2+rng.Intn(3)]
					extra = extra[len(gs):]
					if err := eng.AddGraphs(ctx, gs); err != nil {
						t.Fatal(err)
					}
					ref.add(gs)
				}
			}

			for round := 0; round < 3 && len(extra) >= 5; round++ {
				mutate()
				fresh, err := NewEngine(ref.db, opt)
				if err != nil {
					t.Fatal(err)
				}
				probes := make([]*Graph, 6)
				for i := range probes {
					probes[i] = randPattern(rng, ref.db)
				}
				assertEquivalent(t, fmt.Sprintf("round %d", round), eng, fresh, probes)

				// Interleave queries so the cache keeps evolving between
				// mutations (flushes included).
				for i := 0; i < 5; i++ {
					if _, err := eng.Query(ctx, randPattern(rng, ref.db)); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Mid-sequence save→load: the restored engine must be equivalent
			// to the live one and keep accepting mutations.
			dir := t.TempDir()
			snap := filepath.Join(dir, "engine.igq")
			f, err := os.Create(snap)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Save(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
			lf, err := os.Open(snap)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := LoadEngine(lf, ref.db, opt)
			lf.Close()
			if err != nil {
				t.Fatal(err)
			}
			eng = restored

			mutate()
			fresh, err := NewEngine(ref.db, opt)
			if err != nil {
				t.Fatal(err)
			}
			probes := make([]*Graph, 6)
			for i := range probes {
				probes[i] = randPattern(rng, ref.db)
			}
			assertEquivalent(t, "post-restore", eng, fresh, probes)
		})
	}
}

// TestEngineMutationCachePatch: a cached answer must be extended by an
// append (the new graph is served from the cache without re-running the
// query against it) and shrunk by a removal.
func TestEngineMutationCachePatch(t *testing.T) {
	db := GenerateDataset(AIDSSpec().Scaled(0.002, 1))
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, CacheSize: 10, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := ExtractQuery(db[0], 0, 3)
	first, err := eng.Query(ctx, q) // admitted; Window=1 flushes immediately
	if err != nil {
		t.Fatal(err)
	}
	if eng.CacheLen() == 0 {
		t.Fatal("query was not cached")
	}

	// Append a clone of a matching graph: it must join the cached answer.
	host := db[first.IDs[0]]
	if err := eng.AddGraphs(ctx, []*Graph{host.Clone()}); err != nil {
		t.Fatal(err)
	}
	newID := int32(len(db)) // appended position
	res, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.AnsweredByCache {
		t.Fatalf("repeated query not answered by cache (stats %+v)", res.Stats)
	}
	found := false
	for _, id := range res.IDs {
		if id == newID {
			found = true
		}
	}
	if !found {
		t.Fatalf("cached answer %v does not include appended matching graph %d", res.IDs, newID)
	}

	// Remove the appended graph again: the cached answer must shrink and
	// renumber, matching a no-cache run exactly.
	if err := eng.RemoveGraphs(ctx, []int{int(newID)}); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Query(ctx, q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.IDs, plain.IDs) {
		t.Fatalf("post-removal cached answer %v != plain answer %v", res2.IDs, plain.IDs)
	}
}

// TestRejectedRemovalLeavesNoDeltaTrace: a RemoveGraphs the engine
// rejects (here: it would empty the dataset) must leave nothing behind —
// in particular no ops in the method's delta log, or a later
// AppendIndexDelta would persist a removal that was never applied and the
// journaled snapshot would reload as a drained index.
func TestRejectedRemovalLeavesNoDeltaTrace(t *testing.T) {
	db := GenerateDataset(AIDSSpec().Scaled(0.001, 1))
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	snap := filepath.Join(t.TempDir(), "idx")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(snap)

	all := make([]int, len(db))
	for i := range all {
		all[i] = i
	}
	if err := eng.RemoveGraphs(ctx, all); err == nil {
		t.Fatal("removing every graph unexpectedly succeeded")
	}
	f, err = os.OpenFile(snap, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AppendIndexDelta(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	after, _ := os.Stat(snap)
	if after.Size() != before.Size() {
		t.Fatalf("rejected removal grew the snapshot %d -> %d bytes (phantom journal)", before.Size(), after.Size())
	}
	// The snapshot must still load to a fully answering index.
	fresh, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fresh.LoadIndex(lf)
	lf.Close()
	if err != nil {
		t.Fatal(err)
	}
	q := ExtractQuery(db[0], 0, 3)
	res, err := fresh.Query(ctx, q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Query(ctx, q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.IDs, want.IDs) || len(res.IDs) == 0 {
		t.Fatalf("reloaded snapshot answers %v, live engine %v", res.IDs, want.IDs)
	}
}

// TestEngineMutationUnsupported: non-mutable methods refuse cleanly.
func TestEngineMutationUnsupported(t *testing.T) {
	db := GenerateDataset(AIDSSpec().Scaled(0.001, 1))
	eng, err := NewEngine(db, EngineOptions{Method: CTIndex, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.AddGraphs(context.Background(), []*Graph{db[0].Clone()})
	if !errors.Is(err, index.ErrNotMutable) {
		t.Fatalf("AddGraphs on CT-Index: err = %v, want ErrNotMutable", err)
	}
}
