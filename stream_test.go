package igq

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// streamWorkload builds a repetitive query stream that exercises cache hits
// alongside fresh queries.
func streamWorkload(db []*Graph, n int) []*Graph {
	base := GenerateWorkload(db, WorkloadSpec{
		NumQueries: max(n/3, 1), GraphDist: Zipf, NodeDist: Uniform, Alpha: 1.4, Seed: 11,
	})
	out := make([]*Graph, 0, n)
	for len(out) < n {
		out = append(out, base[len(out)%len(base)])
	}
	return out
}

func TestQueryStreamCompletesAll(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: Grapes, CacheSize: 30, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	queries := streamWorkload(db, 40)
	in := make(chan *Graph)
	go func() {
		defer close(in)
		for _, q := range queries {
			in <- q
		}
	}()
	got := make([]*BatchResult, len(queries))
	n := 0
	for br := range eng.QueryStream(context.Background(), in, StreamWorkers(4)) {
		if br.Index < 0 || br.Index >= len(queries) {
			t.Fatalf("result index %d out of range", br.Index)
		}
		if got[br.Index] != nil {
			t.Fatalf("duplicate result for index %d", br.Index)
		}
		r := br
		got[br.Index] = &r
		n++
	}
	if n != len(queries) {
		t.Fatalf("stream emitted %d results for %d queries", n, len(queries))
	}
	for i, br := range got {
		if br.Err != nil {
			t.Fatalf("query %d: %v", i, br.Err)
		}
		for _, id := range br.Result.IDs {
			if !IsSubgraph(queries[i], db[id]) {
				t.Errorf("query %d: answer %d does not contain it", i, id)
			}
		}
	}
}

// The deprecate-and-delegate contract: QueryBatch (now a thin wrapper over
// QueryStream) and a hand-rolled QueryStream consumption must produce
// identical answers for the same query set, on both query directions.
func TestBatchAndStreamAnswersIdentical(t *testing.T) {
	db := smallDB(t)
	for _, mode := range []struct {
		name string
		opt  EngineOptions
	}{
		{"sub", EngineOptions{Method: Grapes, CacheSize: 25, Window: 5}},
		{"super", EngineOptions{Supergraph: true, CacheSize: 25, Window: 5}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			queries := streamWorkload(db, 30)
			engBatch, err := NewEngine(db, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			engStream, err := NewEngine(db, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			batch := engBatch.QueryBatch(queries, 4)

			in := make(chan *Graph)
			go func() {
				defer close(in)
				for _, q := range queries {
					in <- q
				}
			}()
			stream := make([]BatchResult, len(queries))
			for br := range engStream.QueryStream(context.Background(), in, StreamWorkers(4)) {
				stream[br.Index] = br
			}

			for i := range queries {
				if batch[i].Err != nil || stream[i].Err != nil {
					t.Fatalf("query %d errors: batch=%v stream=%v", i, batch[i].Err, stream[i].Err)
				}
				if !reflect.DeepEqual(batch[i].Result.IDs, stream[i].Result.IDs) {
					t.Errorf("query %d: batch answers %v, stream answers %v",
						i, batch[i].Result.IDs, stream[i].Result.IDs)
				}
			}
		})
	}
}

func TestQueryStreamCancellationClosesPromptly(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX})
	if err != nil {
		t.Fatal(err)
	}
	queries := streamWorkload(db, 50)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *Graph)
	var fed atomic.Int32
	go func() {
		defer close(in)
		for _, q := range queries {
			select {
			case in <- q:
				fed.Add(1)
			case <-ctx.Done():
				return
			}
		}
	}()
	out := eng.QueryStream(ctx, in, StreamWorkers(2))
	// Take a few results, then cancel mid-stream.
	for i := 0; i < 3; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	deadline := time.After(10 * time.Second)
	n := 3
	for {
		select {
		case _, ok := <-out:
			if !ok {
				if n > int(fed.Load()) {
					t.Fatalf("emitted %d results for %d accepted queries", n, fed.Load())
				}
				return // closed promptly, no leaked results required
			}
			n++
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
}

func TestQueryBatchCancelledReportsCtxError(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := streamWorkload(db, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := eng.QueryBatchCtx(ctx, queries, 4)
	if len(out) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(out), len(queries))
	}
	for i, br := range out {
		if br.Err == nil {
			t.Errorf("query %d: no error from a pre-cancelled batch", i)
		}
	}
}

func TestQueryStreamNilQuery(t *testing.T) {
	db := smallDB(t)
	eng, err := NewEngine(db, EngineOptions{Method: GGSX})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Graph, 2)
	in <- nil
	in <- ExtractQuery(db[0], 0, 4)
	close(in)
	var nilErr, okCount int
	for br := range eng.QueryStream(context.Background(), in) {
		if br.Index == 0 {
			if br.Err == nil {
				t.Error("nil query did not error")
			}
			nilErr++
		} else if br.Err == nil {
			okCount++
		}
	}
	if nilErr != 1 || okCount != 1 {
		t.Errorf("nilErr=%d okCount=%d", nilErr, okCount)
	}
}
