// Command igqload drives a live igqserve instance with a concurrent query
// workload and reports throughput and tail latency — the serving stack's
// load generator and CI gate.
//
// Usage:
//
//	igqload -addr http://127.0.0.1:7468 -queries queries.db
//	        [-n 10000] [-c 16] [-mode mixed] [-stream]
//	        [-mutations 0 -mutate-every 50ms [-partitioned]]
//	        [-timeout 30s] [-max-429-retries 100]
//
// -n requests are drawn round-robin from the query file and issued by -c
// concurrent workers. -mode sub|super|mixed selects the query direction
// (mixed alternates per request; super and mixed need a server started
// with -super). 429 responses — the server's bounded admission queue
// doing its job — are retried with backoff and counted separately, and so
// are 503 warming responses (the bind-first front door's Retry-After is
// honoured as the backoff); any other failure is an error. The exit
// status is non-zero if any request ultimately failed, so a CI job can
// gate on it directly.
//
// -mutations N interleaves N dataset mutations with the query load from a
// dedicated goroutine, alternating adds (small batches cloned from the
// query file under fresh IDs) with removals, paced by -mutate-every.
// Against a server started with -partitions, pass -partitioned: removals
// then address the mutator's own added graphs by their global IDs (the
// partitioned wire contract) instead of by dataset tail position.
//
// -stream sends the workload through POST /query/stream on one NDJSON
// connection per worker instead of unary requests (per-line latency is
// not measured in this mode; QPS and the zero-error gate still are).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	igq "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:7468", "server base URL")
		qPath   = flag.String("queries", "", "query file (required)")
		n       = flag.Int("n", 10000, "total requests")
		c       = flag.Int("c", 16, "concurrent workers")
		mode    = flag.String("mode", "sub", "query mode: sub | super | mixed")
		stream  = flag.Bool("stream", false, "use the NDJSON streaming endpoint")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		retries = flag.Int("max-429-retries", 100, "backoff retries per request on a full admission queue")
		muts    = flag.Int("mutations", 0, "dataset mutations to interleave with the query load")
		mutGap  = flag.Duration("mutate-every", 50*time.Millisecond, "pacing between mutations (needs -mutations)")
		parted  = flag.Bool("partitioned", false, "server is partitioned: removals address added graphs by global ID")
	)
	flag.Parse()
	if *qPath == "" {
		fatal("igqload: -queries is required")
	}
	switch *mode {
	case "sub", "super", "mixed":
	default:
		fatal("igqload: unknown mode %q", *mode)
	}
	queries, err := igq.LoadGraphs(*qPath)
	if err != nil {
		fatal("igqload: loading queries: %v", err)
	}
	if len(queries) == 0 {
		fatal("igqload: empty query file")
	}

	client := server.NewClient(*addr)
	waitHealthy(client)

	modeFor := func(i int) string {
		switch *mode {
		case "mixed":
			if i%2 == 1 {
				return server.ModeSuper
			}
			return server.ModeSub
		default:
			return *mode
		}
	}

	var (
		done      atomic.Int64
		failed    atomic.Int64
		rejected  atomic.Int64 // 429 retries, not errors
		latencies = make([]time.Duration, *n)
		next      atomic.Int64
	)
	t0 := time.Now()
	var wg sync.WaitGroup
	var mutOK, mutFailed atomic.Int64
	if *muts > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mutator(client, queries, *muts, *mutGap, *parted, *timeout, &mutOK, &mutFailed)
		}()
	}
	for w := 0; w < *c; w++ {
		wg.Add(1)
		if *stream {
			go func(worker int) {
				defer wg.Done()
				streamWorker(client, queries, modeFor, &next, int64(*n), *timeout, &done, &failed)
			}(w)
		} else {
			go func(worker int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(worker)))
				for {
					i := next.Add(1) - 1
					if i >= int64(*n) {
						return
					}
					q := queries[i%int64(len(queries))]
					lat, err := oneQuery(client, q, modeFor(int(i)), *timeout, *retries, rng, &rejected)
					if err != nil {
						failed.Add(1)
						fmt.Fprintf(os.Stderr, "igqload: request %d: %v\n", i, err)
					} else {
						latencies[i] = lat
					}
					done.Add(1)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)

	completed := done.Load()
	errCount := failed.Load() + mutFailed.Load()
	qps := float64(completed) / elapsed.Seconds()
	if *stream {
		fmt.Printf("igqload: n=%d mode=%s stream=true elapsed=%v qps=%.1f errors=%d\n",
			completed, *mode, elapsed.Round(time.Millisecond), qps, errCount)
	} else {
		ok := latencies[:0]
		for _, l := range latencies {
			if l > 0 {
				ok = append(ok, l)
			}
		}
		sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
		p50, p99 := percentile(ok, 0.50), percentile(ok, 0.99)
		fmt.Printf("igqload: n=%d mode=%s elapsed=%v qps=%.1f p50=%v p99=%v retries429=%d errors=%d\n",
			completed, *mode, elapsed.Round(time.Millisecond), qps, p50, p99, rejected.Load(), errCount)
	}
	if *muts > 0 {
		fmt.Printf("igqload: mutations=%d ok=%d failed=%d partitioned=%v\n",
			*muts, mutOK.Load(), mutFailed.Load(), *parted)
	}
	if errCount > 0 {
		os.Exit(1)
	}
}

// oneQuery issues a single unary query, absorbing back-pressure with
// backoff: 429 (a bounded admission queue rejecting under burst) with
// jittered exponential backoff, 503 warming (the bind-first front door
// still loading the engine) by honouring its Retry-After hint. Neither is
// a failure — unless it never clears.
func oneQuery(client *server.Client, q *igq.Graph, mode string, timeout time.Duration, retries int, rng *rand.Rand, rejected *atomic.Int64) (time.Duration, error) {
	backoff := time.Millisecond
	start := time.Now()
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		reply, err := client.QueryGraph(ctx, q, mode)
		cancel()
		var unavail *server.UnavailableError
		switch {
		case err == nil:
			if reply.Error != "" {
				return 0, errors.New(reply.Error)
			}
			return time.Since(start), nil
		case errors.Is(err, server.ErrQueueFull):
			rejected.Add(1)
			if attempt >= retries {
				return 0, fmt.Errorf("queue full after %d retries", retries)
			}
			time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		case errors.As(err, &unavail):
			rejected.Add(1)
			if attempt >= retries {
				return 0, fmt.Errorf("still warming after %d retries", retries)
			}
			time.Sleep(unavail.RetryAfter)
		default:
			return 0, err
		}
	}
}

// mutator interleaves dataset mutations with the query load: adds (small
// batches cloned from the query file under fresh IDs) alternate with
// removals. Partitioned servers address removals by the added graphs'
// global IDs; single-engine servers remove the current dataset tail
// position. Warming 503s back off like queries do; real failures count
// toward the exit status.
func mutator(client *server.Client, queries []*igq.Graph, n int, gap time.Duration, partitioned bool, timeout time.Duration, ok, failed *atomic.Int64) {
	const idBase = 10_000_000 // far above any generated dataset ID
	nextID := idBase
	var addedIDs []int // IDs this run added (partitioned removal targets)
	lastSize := 0
	call := func(fn func(ctx context.Context) (server.MutateReply, error)) (server.MutateReply, error) {
		for attempt := 0; ; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			reply, err := fn(ctx)
			cancel()
			var unavail *server.UnavailableError
			if errors.As(err, &unavail) && attempt < 50 {
				time.Sleep(unavail.RetryAfter)
				continue
			}
			return reply, err
		}
	}
	for k := 0; k < n; k++ {
		if k > 0 {
			time.Sleep(gap)
		}
		remove := k%2 == 1 && (len(addedIDs) > 0 || (!partitioned && lastSize > 1))
		if !remove {
			batch := make([]*igq.Graph, 2)
			for i := range batch {
				g := queries[(k+i)%len(queries)].Clone()
				g.ID = nextID
				nextID++
				batch[i] = g
			}
			reply, err := call(func(ctx context.Context) (server.MutateReply, error) {
				return client.AddGraphs(ctx, batch)
			})
			if err != nil {
				failed.Add(1)
				fmt.Fprintf(os.Stderr, "igqload: mutation %d (add): %v\n", k, err)
				continue
			}
			lastSize = reply.DatasetSize
			if partitioned {
				for _, g := range batch {
					addedIDs = append(addedIDs, g.ID)
				}
			}
			ok.Add(1)
			continue
		}
		var target int
		if partitioned {
			target = addedIDs[0]
			addedIDs = addedIDs[1:]
		} else {
			target = lastSize - 1
		}
		reply, err := call(func(ctx context.Context) (server.MutateReply, error) {
			return client.RemoveGraphs(ctx, []int{target})
		})
		if err != nil {
			failed.Add(1)
			fmt.Fprintf(os.Stderr, "igqload: mutation %d (remove %d): %v\n", k, target, err)
			continue
		}
		lastSize = reply.DatasetSize
		ok.Add(1)
	}
}

// streamWorker pushes its share of the workload through one NDJSON stream.
// The stream holds execution slots as flow control, so there is nothing to
// retry — backpressure arrives as TCP pushback, not 429s.
func streamWorker(client *server.Client, queries []*igq.Graph, modeFor func(int) string, next *atomic.Int64, n int64, timeout time.Duration, done, failed *atomic.Int64) {
	// One stream runs one mode; a mixed workload alternates stream-by-
	// stream using the first index this worker draws.
	first := next.Add(1) - 1
	if first >= n {
		return
	}
	mode := modeFor(int(first))
	ctx, cancel := context.WithTimeout(context.Background(), 10*timeout)
	defer cancel()
	in := make(chan server.QueryRequest)
	go func() {
		defer close(in)
		i := first
		for {
			q := queries[i%int64(len(queries))]
			select {
			case in <- server.QueryRequest{Graph: server.EncodeGraph(q)}:
			case <-ctx.Done():
				return
			}
			i = next.Add(1) - 1
			if i >= n {
				return
			}
		}
	}()
	replies, errc := client.QueryStream(ctx, mode, timeout, in)
	for r := range replies {
		done.Add(1)
		if r.Error != "" {
			failed.Add(1)
			fmt.Fprintf(os.Stderr, "igqload: stream reply %d: %s\n", r.Index, r.Error)
		}
	}
	if err := <-errc; err != nil {
		failed.Add(1)
		fmt.Fprintf(os.Stderr, "igqload: stream (%s): %v\n", mode, err)
	}
}

// waitHealthy blocks until the server answers /healthz, so igqload can be
// started alongside igqserve without racing its index build.
func waitHealthy(client *server.Client) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := client.Healthz(ctx)
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			fatal("igqload: server never became healthy: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fatal(format string, args ...any) {
	fmt.Fprintln(os.Stderr, strings.TrimRight(fmt.Sprintf(format, args...), "\n"))
	os.Exit(1)
}
