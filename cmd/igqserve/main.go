// Command igqserve hosts an iGQ engine behind the HTTP/JSON serving
// front-end: bounded-admission queries, NDJSON streaming, live dataset
// mutation, Prometheus-style metrics, and graceful drain with a shutdown
// snapshot.
//
// Usage:
//
//	igqserve -db dataset.db [-addr :7468] [-method grapes] [-super]
//	         [-partitions N] [-cache 500 -window 100] [-workers N -queue N]
//	         [-snapshot engine.snap] [-lazy [-lazy-budget BYTES]]
//	         [-delta index.idx -maintain-every 30s]
//	         [-timeout 10s -max-timeout 1m]
//
// The serving surface (see internal/server):
//
//	POST /query         one query; 429 when the admission queue is full
//	POST /query/stream  NDJSON in, NDJSON out, bounded by execution slots
//	POST /graphs/add    append graphs (JSON), O(delta) index maintenance
//	POST /graphs/remove remove graphs by dataset position
//	GET  /stats         serving + engine counters (JSON)
//	GET  /metrics       the same counters, Prometheus text format
//	POST /save          write the engine snapshot now
//	GET  /healthz       liveness
//
// If -snapshot names an existing file the engine is restored from it
// (index and query cache, no rebuild); otherwise the index is built and
// the path is used for the shutdown snapshot. SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight queries drain, then the snapshot is
// written atomically.
//
// The port binds before the engine exists: until warm-up completes, GET
// /healthz answers 200 "warming" and everything else answers 503 with
// Retry-After — never connection-refused. -lazy maps the snapshot instead
// of decoding it (segments load on first query, under the -lazy-budget
// resident-byte cap), which shrinks that warming window to the metadata
// read and lets the process serve an index bigger than RAM.
//
// -super additionally hosts a supergraph-containment engine on the same
// dataset, served under mode=super and maintained O(delta) after each
// mutation (the Containment index mutates in place; a rebuild happens only
// if the method cannot).
//
// -partitions N shards the dataset across N in-process partitions routed
// by a stable hash of each graph's ID: queries scatter-gather (answers
// carry global graph IDs instead of positions), mutations touch only the
// owning partition, and -snapshot/-delta become per-partition lineage
// bases (snap.p0, snap.p1, ...). If every partition file exists the group
// is restored from them; -lazy applies only to single-engine snapshots.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	igq "repro"
	"repro/internal/partition"
	"repro/internal/server"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "dataset file (required)")
		addr      = flag.String("addr", ":7468", "listen address")
		method    = flag.String("method", "grapes", "method: grapes | ggsx | ctindex")
		super     = flag.Bool("super", false, "also host a supergraph engine (mode=super)")
		parts     = flag.Int("partitions", 1, "shard the dataset across N in-process partitions (scatter-gather serving)")
		cache     = flag.Int("cache", 500, "iGQ cache size C")
		window    = flag.Int("window", 100, "iGQ window size W")
		workers   = flag.Int("workers", 0, "execution slots (0 = one per CPU)")
		queue     = flag.Int("queue", 0, "admission slots beyond workers (0 = 4x workers)")
		snapshot  = flag.String("snapshot", "", "engine snapshot path: restored at start if present, written on shutdown")
		lazy      = flag.Bool("lazy", false, "map the snapshot lazily: serve once metadata is read, fault posting shards in on first touch")
		lazyBudg  = flag.Int64("lazy-budget", 0, "resident posting-byte budget for -lazy (0 = unbounded)")
		delta     = flag.String("delta", "", "index delta-journal lineage file for mutation persistence")
		maintain  = flag.Duration("maintain-every", 30*time.Second, "journal maintenance interval (needs -delta)")
		timeout   = flag.Duration("timeout", 10*time.Second, "default per-query deadline (0 = none)")
		maxTO     = flag.Duration("max-timeout", time.Minute, "cap on client-requested deadlines")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		quietLoad = flag.Bool("quiet", false, "suppress startup detail")
	)
	flag.Parse()
	if *dbPath == "" {
		fatal("igqserve: -db is required")
	}

	opt := igq.EngineOptions{CacheSize: *cache, Window: *window}
	switch strings.ToLower(*method) {
	case "grapes":
		opt.Method = igq.Grapes
	case "ggsx":
		opt.Method = igq.GGSX
	case "ctindex":
		opt.Method = igq.CTIndex
	default:
		fatal("igqserve: unknown method %q", *method)
	}

	// Bind before any engine work: from here on a probe sees "warming"
	// (200 on /healthz, 503 elsewhere), never connection-refused. The
	// warming window is the engine load below — with -lazy, just its
	// metadata phase.
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("igqserve: %v", err)
	}
	warm := server.NewWarming()
	hs := &http.Server{Handler: warm}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	if !*quietLoad {
		log.Printf("listening on %s (warming)", l.Addr())
	}

	db, err := igq.LoadGraphs(*dbPath)
	if err != nil {
		fatal("igqserve: loading dataset: %v", err)
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		SnapshotPath:   *snapshot,
		DeltaPath:      *delta,
		MaintainEvery:  *maintain,
		Logf:           log.Printf,
	}

	if *parts > 1 {
		if *lazy && !*quietLoad {
			log.Printf("-lazy has no effect with -partitions: partition snapshots restore eagerly")
		}
		popt := partition.Options{Partitions: *parts, Engine: opt, Super: *super}
		t0 := time.Now()
		if *snapshot != "" && partition.HaveAllParts(*snapshot, *parts) {
			grp, reps, err := partition.LoadGroup(*snapshot, db, popt)
			if err != nil {
				fatal("igqserve: restoring partition snapshots: %v", err)
			}
			for i, rep := range reps {
				if rec := rep.RecoveredTail; rec != nil {
					log.Printf("partition %d snapshot had a torn journal tail: dropped %d bytes / %d ops; repaired=%v",
						i, rec.DiscardedBytes, rec.DroppedOps, rep.Repaired)
				}
			}
			cfg.Group = grp
			if !*quietLoad {
				log.Printf("restored %d graphs across %d partitions from %s.p* in %v (super=%v)",
					grp.NumGraphs(), *parts, *snapshot, time.Since(t0), *super)
			}
		} else {
			grp, err := partition.New(db, popt)
			if err != nil {
				fatal("igqserve: %v", err)
			}
			cfg.Group = grp
			if !*quietLoad {
				log.Printf("indexed %d graphs across %d partitions in %v (super=%v)",
					len(db), *parts, time.Since(t0), *super)
			}
		}
	} else {
		buildEngine(&cfg, db, opt, *snapshot, *lazy, *lazyBudg, *super, *cache, *window, *quietLoad)
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal("igqserve: %v", err)
	}
	warm.Ready(s.Handler())
	s.StartBackground()
	if !*quietLoad {
		log.Printf("ready on %s (workers=%d)", l.Addr(), cfg.Workers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("%s: draining (budget %v)", got, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		// Drain the outer listener first (it owns the connections), then
		// the server's persistence steps (journal maintenance + snapshot).
		if err := hs.Shutdown(ctx); err != nil {
			fatal("igqserve: shutdown: %v", err)
		}
		if err := s.Shutdown(ctx); err != nil {
			fatal("igqserve: shutdown: %v", err)
		}
		if *snapshot != "" {
			log.Printf("drained; snapshot written to %s", *snapshot)
		} else {
			log.Printf("drained")
		}
	case err := <-serveErr:
		fatal("igqserve: %v", err)
	}
}

// buildEngine fills cfg with a single-engine deployment: restored from the
// snapshot when one exists (optionally lazily mapped), built otherwise,
// plus the optional supergraph engine.
func buildEngine(cfg *server.Config, db []*igq.Graph, opt igq.EngineOptions,
	snapshot string, lazy bool, lazyBudg int64, super bool, cache, window int, quietLoad bool) {
	t0 := time.Now()
	var eng *igq.Engine
	var err error
	if snapshot != "" {
		if _, statErr := os.Stat(snapshot); statErr == nil {
			var lopts []igq.EngineLoadOption
			if lazy {
				lopts = append(lopts, igq.WithLazyLoad(lazyBudg))
			}
			var rep igq.LoadReport
			eng, rep, err = igq.LoadEngineFile(snapshot, db, opt, lopts...)
			if err != nil {
				fatal("igqserve: restoring snapshot: %v", err)
			}
			if rec := rep.RecoveredTail; rec != nil {
				log.Printf("snapshot had a torn journal tail: dropped %d bytes / %d ops; repaired=%v",
					rec.DiscardedBytes, rec.DroppedOps, rep.Repaired)
			}
			if !quietLoad {
				if st := eng.Stats(); st.LazyLoaded {
					log.Printf("lazily mapped %s engine over %d graphs from %s in %v (%d shards on demand, budget %d bytes)",
						eng.MethodName(), len(db), snapshot, time.Since(t0), st.TotalShards, st.LazyBudgetBytes)
				} else {
					log.Printf("restored %s engine over %d graphs from %s in %v",
						eng.MethodName(), len(db), snapshot, time.Since(t0))
				}
			}
		}
	}
	if eng == nil && lazy && !quietLoad {
		log.Printf("-lazy has no effect: no snapshot to map (building the index)")
	}
	if eng == nil {
		eng, err = igq.NewEngine(db, opt)
		if err != nil {
			fatal("igqserve: %v", err)
		}
		if !quietLoad {
			log.Printf("indexed %d graphs with %s in %v", len(db), eng.MethodName(), time.Since(t0))
		}
	}
	cfg.Engine = eng
	if super {
		superOpt := igq.EngineOptions{Supergraph: true, CacheSize: cache, Window: window}
		t := time.Now()
		cfg.Super, err = igq.NewEngine(db, superOpt)
		if err != nil {
			fatal("igqserve: building supergraph engine: %v", err)
		}
		cfg.SuperOptions = superOpt
		if !quietLoad {
			log.Printf("supergraph engine ready in %v", time.Since(t))
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
