// Command igqgen generates synthetic datasets and query workloads in the
// module's text graph format.
//
// Usage:
//
//	igqgen -dataset aids -count-frac 0.01 -out aids.db
//	igqgen -dataset pdbs -size-frac 0.1 -out pdbs.db
//	igqgen -workload zipf-zipf -alpha 1.4 -queries 500 -in aids.db -out queries.db
//
// Dataset mode (-dataset) emulates one of the paper's Table 1 datasets at a
// chosen scale. Workload mode (-workload) extracts queries from an existing
// dataset file per the paper's §7.1 protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	var (
		dsName    = flag.String("dataset", "", "dataset family: aids | pdbs | ppi | synthetic")
		countFrac = flag.Float64("count-frac", 1.0, "fraction of the paper's graph count")
		sizeFrac  = flag.Float64("size-frac", 1.0, "fraction of the paper's graph sizes")
		degFrac   = flag.Float64("degree-frac", 1.0, "fraction of the paper's average degree")
		wlName    = flag.String("workload", "", "workload: uni-uni | uni-zipf | zipf-uni | zipf-zipf")
		alpha     = flag.Float64("alpha", 1.4, "Zipf skew for workload generation")
		queries   = flag.Int("queries", 500, "number of queries to generate")
		in        = flag.String("in", "", "input dataset file (workload mode)")
		out       = flag.String("out", "", "output file (required)")
		seed      = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if *out == "" {
		fail("missing -out")
	}
	switch {
	case *dsName != "" && *wlName != "":
		fail("choose either -dataset or -workload, not both")
	case *dsName != "":
		genDataset(*dsName, *countFrac, *sizeFrac, *degFrac, *seed, *out)
	case *wlName != "":
		genWorkload(*wlName, *in, *out, *alpha, *queries, *seed)
	default:
		fail("choose -dataset or -workload")
	}
}

func genDataset(name string, countFrac, sizeFrac, degFrac float64, seed int64, out string) {
	var spec dataset.Spec
	switch strings.ToLower(name) {
	case "aids":
		spec = dataset.AIDS()
	case "pdbs":
		spec = dataset.PDBS()
	case "ppi":
		spec = dataset.PPI()
	case "synthetic":
		spec = dataset.Synthetic()
	default:
		fail("unknown dataset %q", name)
	}
	spec = spec.Scaled(countFrac, sizeFrac).WithDegree(degFrac)
	spec.Seed = seed
	db := dataset.Generate(spec)
	if err := graph.SaveFile(out, db); err != nil {
		fail("writing %s: %v", out, err)
	}
	c := dataset.Measure(spec.Name, db)
	fmt.Printf("wrote %d graphs to %s\n%s\n", len(db), out, c)
}

func genWorkload(name, in, out string, alpha float64, queries int, seed int64) {
	if in == "" {
		fail("workload mode requires -in <dataset file>")
	}
	db, err := graph.LoadFile(in)
	if err != nil {
		fail("reading %s: %v", in, err)
	}
	var gd, nd workload.Dist
	switch strings.ToLower(name) {
	case "uni-uni":
		gd, nd = workload.Uniform, workload.Uniform
	case "uni-zipf":
		gd, nd = workload.Uniform, workload.Zipf
	case "zipf-uni":
		gd, nd = workload.Zipf, workload.Uniform
	case "zipf-zipf":
		gd, nd = workload.Zipf, workload.Zipf
	default:
		fail("unknown workload %q", name)
	}
	qs := workload.Generate(db, workload.Spec{
		NumQueries: queries, GraphDist: gd, NodeDist: nd, Alpha: alpha, Seed: seed,
	})
	gs := make([]*graph.Graph, len(qs))
	for i, q := range qs {
		q.G.ID = i
		gs[i] = q.G
	}
	if err := graph.SaveFile(out, gs); err != nil {
		fail("writing %s: %v", out, err)
	}
	fmt.Printf("wrote %d queries to %s (workload %s, alpha=%.1f)\n", len(gs), out, name, alpha)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "igqgen: "+format+"\n", args...)
	os.Exit(1)
}
