// Command igqquery answers subgraph or supergraph queries from files, with
// iGQ acceleration, and reports per-query statistics — a minimal end-to-end
// driver over the public API.
//
// Usage:
//
//	igqquery -db dataset.db -queries queries.db [-method grapes] [-super]
//	         [-cache 500 -window 100] [-no-cache] [-workers N]
//	         [-save-index snap.igq] [-load-index snap.igq]
//	         [-append extra.db]
//
// With -workers != 1 the queries are served concurrently through the
// engine's batch pipeline (0 = one worker per CPU); -workers 1 replays the
// stream sequentially, which maximises the cache-hit rate on highly
// repetitive streams.
//
// -load-index restores the engine (dataset index + query cache) from a
// snapshot written by an earlier -save-index run against the same dataset,
// skipping the index build entirely; -save-index writes the snapshot after
// the queries have been served, so the accumulated cache is captured too.
//
// -append extends the dataset with the graphs of another file *after* the
// engine is ready (built or restored), through the engine's O(delta) live
// mutation path — the index is not rebuilt, and the reported append time
// shows it. The queries are then served over the extended dataset; answer
// ids refer to positions in base-then-extra order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	igq "repro"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "dataset file (required)")
		qPath   = flag.String("queries", "", "query file (required)")
		method  = flag.String("method", "grapes", "method: grapes | ggsx | ctindex")
		threads = flag.Int("threads", 1, "Grapes build threads")
		shards  = flag.Int("shards", 0, "postings shard count (0 = one per CPU)")
		bwork   = flag.Int("buildworkers", 0, "index-build goroutines (0 = per-method default)")
		super   = flag.Bool("super", false, "supergraph queries (uses the containment index)")
		cache   = flag.Int("cache", 500, "iGQ cache size C")
		window  = flag.Int("window", 100, "iGQ window size W")
		noCache = flag.Bool("no-cache", false, "disable iGQ (plain filter-then-verify)")
		workers = flag.Int("workers", 1, "query-serving goroutines (0 = one per CPU, 1 = sequential)")
		saveIdx = flag.String("save-index", "", "write an engine snapshot (index + cache) to this file after serving")
		loadIdx = flag.String("load-index", "", "restore the engine from a snapshot instead of building the index")
		appendF = flag.String("append", "", "append this file's graphs to the dataset via live O(delta) mutation before serving")
		quiet   = flag.Bool("quiet", false, "suppress per-query lines")
	)
	flag.Parse()
	if *dbPath == "" || *qPath == "" {
		fmt.Fprintln(os.Stderr, "igqquery: -db and -queries are required")
		os.Exit(1)
	}
	db, err := igq.LoadGraphs(*dbPath)
	if err != nil {
		fatal("loading dataset: %v", err)
	}
	queries, err := igq.LoadGraphs(*qPath)
	if err != nil {
		fatal("loading queries: %v", err)
	}

	opt := igq.EngineOptions{
		Threads:      *threads,
		Supergraph:   *super,
		CacheSize:    *cache,
		Window:       *window,
		DisableCache: *noCache,
		Shards:       *shards,
		BuildWorkers: *bwork,
	}
	switch strings.ToLower(*method) {
	case "grapes":
		opt.Method = igq.Grapes
	case "ggsx":
		opt.Method = igq.GGSX
	case "ctindex":
		opt.Method = igq.CTIndex
	default:
		fatal("unknown method %q", *method)
	}

	// Pre-flight the snapshot destination before serving a potentially long
	// workload: an unwritable path or a method without index persistence
	// should fail in milliseconds, not after the last query. The probe must
	// not truncate an existing snapshot (the previous good one has to
	// survive until the new bytes are complete), so it tests writability
	// with a sibling temp file, never the target itself.
	if *saveIdx != "" {
		switch strings.ToLower(*method) {
		case "grapes", "ggsx":
		default:
			fatal("-save-index requires a persistable method (grapes or ggsx), not %s", *method)
		}
		if err := probeWritable(*saveIdx); err != nil {
			fatal("index snapshot destination: %v", err)
		}
	}

	t0 := time.Now()
	var eng *igq.Engine
	if *loadIdx != "" {
		var rep igq.LoadReport
		eng, rep, err = igq.LoadEngineFile(*loadIdx, db, opt)
		if err != nil {
			fatal("loading index snapshot: %v", err)
		}
		if rec := rep.RecoveredTail; rec != nil {
			fmt.Printf("snapshot had a torn journal tail (crash mid-append?): dropped %d bytes / %d uncommitted ops; repaired=%v\n",
				rec.DiscardedBytes, rec.DroppedOps, rep.Repaired)
		}
		fmt.Printf("restored %s engine over %d graphs from %s in %v (no rebuild)\n",
			eng.MethodName(), len(db), *loadIdx, time.Since(t0))
	} else {
		eng, err = igq.NewEngine(db, opt)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("indexed %d graphs with %s in %v\n", len(db), eng.MethodName(), time.Since(t0))
	}

	ctx := context.Background()

	if *appendF != "" {
		extra, err := igq.LoadGraphs(*appendF)
		if err != nil {
			fatal("loading append graphs: %v", err)
		}
		t := time.Now()
		if err := eng.AddGraphs(ctx, extra); err != nil {
			fatal("appending graphs: %v", err)
		}
		fmt.Printf("appended %d graphs in %v (dataset now %d graphs; no rebuild)\n",
			len(extra), time.Since(t), len(eng.Dataset()))
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	t1 := time.Now()
	var results []igq.BatchResult
	if nWorkers == 1 {
		results = make([]igq.BatchResult, len(queries))
		for i, q := range queries {
			res, err := eng.Query(ctx, q)
			results[i] = igq.BatchResult{Index: i, Result: res, Err: err}
		}
	} else {
		fmt.Printf("serving with %d workers\n", nWorkers)
		results = eng.QueryBatchCtx(ctx, queries, nWorkers)
	}
	elapsed := time.Since(t1)

	totalMatches := 0
	for i, r := range results {
		if r.Err != nil {
			fatal("query %d: %v", i, r.Err)
		}
		totalMatches += len(r.Result.IDs)
		if !*quiet {
			q := queries[i]
			fmt.Printf("q%-4d |V|=%-3d |E|=%-3d matches=%-4d isoTests=%-4d cand=%d->%d cacheHit=%v\n",
				i, q.NumVertices(), q.NumEdges(), len(r.Result.IDs),
				r.Result.Stats.DatasetIsoTests, r.Result.Stats.BaseCandidates,
				r.Result.Stats.FinalCandidates, r.Result.Stats.AnsweredByCache)
		}
	}
	st := eng.Stats()
	fmt.Printf("\n%d queries in %v (%.2f ms/query aggregate)\n",
		len(queries), elapsed, float64(elapsed.Milliseconds())/float64(max(1, len(queries))))
	fmt.Printf("total matches: %d, dataset iso tests: %d, cache iso tests: %d\n",
		totalMatches, st.DatasetIsoTests, st.CacheIsoTests)
	fmt.Printf("cache short-circuits: %d, sub/super hits: %d/%d, cached queries: %d, flushes: %d\n",
		st.AnsweredByCache, st.SubHits, st.SuperHits, st.CachedQueries, st.Flushes)

	if *saveIdx != "" {
		// Atomic save: the bytes land in a temp file and replace the target
		// with a rename only once complete, so a crash mid-save (or a failed
		// serve above) never destroys a previous good snapshot.
		t2 := time.Now()
		if err := igq.SaveEngineFile(*saveIdx, eng); err != nil {
			fatal("saving index snapshot: %v", err)
		}
		var size int64
		if fi, err := os.Stat(*saveIdx); err == nil {
			size = fi.Size()
		}
		fmt.Printf("saved engine snapshot (index + cache) to %s (%d bytes) in %v\n",
			*saveIdx, size, time.Since(t2))
	}
}

// probeWritable verifies path's directory accepts new files without
// touching path itself.
func probeWritable(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".igqquery-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "igqquery: "+format+"\n", args...)
	os.Exit(1)
}
