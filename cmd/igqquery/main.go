// Command igqquery answers subgraph or supergraph queries from files, with
// iGQ acceleration, and reports per-query statistics — a minimal end-to-end
// driver over the public API.
//
// Usage:
//
//	igqquery -db dataset.db -queries queries.db [-method grapes] [-super]
//	         [-cache 500 -window 100] [-no-cache]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	igq "repro"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "dataset file (required)")
		qPath   = flag.String("queries", "", "query file (required)")
		method  = flag.String("method", "grapes", "method: grapes | ggsx | ctindex")
		threads = flag.Int("threads", 1, "Grapes build threads")
		super   = flag.Bool("super", false, "supergraph queries (uses the containment index)")
		cache   = flag.Int("cache", 500, "iGQ cache size C")
		window  = flag.Int("window", 100, "iGQ window size W")
		noCache = flag.Bool("no-cache", false, "disable iGQ (plain filter-then-verify)")
		quiet   = flag.Bool("quiet", false, "suppress per-query lines")
	)
	flag.Parse()
	if *dbPath == "" || *qPath == "" {
		fmt.Fprintln(os.Stderr, "igqquery: -db and -queries are required")
		os.Exit(1)
	}
	db, err := igq.LoadGraphs(*dbPath)
	if err != nil {
		fatal("loading dataset: %v", err)
	}
	queries, err := igq.LoadGraphs(*qPath)
	if err != nil {
		fatal("loading queries: %v", err)
	}

	opt := igq.EngineOptions{
		Threads:      *threads,
		Supergraph:   *super,
		CacheSize:    *cache,
		Window:       *window,
		DisableCache: *noCache,
	}
	switch strings.ToLower(*method) {
	case "grapes":
		opt.Method = igq.Grapes
	case "ggsx":
		opt.Method = igq.GGSX
	case "ctindex":
		opt.Method = igq.CTIndex
	default:
		fatal("unknown method %q", *method)
	}

	t0 := time.Now()
	eng, err := igq.NewEngine(db, opt)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("indexed %d graphs with %s in %v\n", len(db), eng.MethodName(), time.Since(t0))

	var totalTests, totalHits, totalMatches int
	t1 := time.Now()
	for i, q := range queries {
		var res igq.Result
		if *super {
			res, err = eng.QuerySupergraph(q)
		} else {
			res, err = eng.QuerySubgraph(q)
		}
		if err != nil {
			fatal("query %d: %v", i, err)
		}
		totalTests += res.Stats.DatasetIsoTests
		totalMatches += len(res.IDs)
		if res.Stats.AnsweredByCache {
			totalHits++
		}
		if !*quiet {
			fmt.Printf("q%-4d |V|=%-3d |E|=%-3d matches=%-4d isoTests=%-4d cand=%d->%d cacheHit=%v\n",
				i, q.NumVertices(), q.NumEdges(), len(res.IDs),
				res.Stats.DatasetIsoTests, res.Stats.BaseCandidates,
				res.Stats.FinalCandidates, res.Stats.AnsweredByCache)
		}
	}
	elapsed := time.Since(t1)
	fmt.Printf("\n%d queries in %v (%.2f ms/query)\n",
		len(queries), elapsed, float64(elapsed.Milliseconds())/float64(max(1, len(queries))))
	fmt.Printf("total matches: %d, dataset iso tests: %d, cache short-circuits: %d, cached queries: %d\n",
		totalMatches, totalTests, totalHits, eng.CacheLen())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "igqquery: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
