// Command igqbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	igqbench -list
//	igqbench -experiment fig7
//	igqbench -experiment all -scale 2.0 -seed 7
//
// Each experiment prints an aligned text table with the same rows/series as
// the corresponding paper figure, plus a note describing the paper's shape
// for comparison. Scale 1.0 is the CI-friendly default; larger values
// approach the paper's dataset sizes at the cost of runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("experiment", "", "experiment id (table1, fig1..fig18, ablation-*, concurrency) or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset/workload scale factor")
		seed    = flag.Int64("seed", 42, "random seed (full determinism per seed)")
		workers = flag.Int("workers", 0, "max goroutines for the concurrency experiments (0 = one per CPU)")
		shards  = flag.Int("shards", 0, "postings shard count for sharded-store experiments (0 = one per CPU)")
		bwork   = flag.Int("buildworkers", 0, "max index-build goroutines for the buildscale experiment (0 = one per CPU)")
		saveIdx = flag.String("save-index", "", "directory to keep the coldstart experiment's index snapshots in (default: temp, discarded)")
		loadIdx = flag.String("load-index", "", "directory holding pre-built index snapshots for the coldstart experiment (written by an earlier -save-index run)")
		density = flag.Float64("density", 0, "single membership density for the containers experiment (0 = sparse/moderate/dense grid with perf gates)")
		bjson   = flag.String("bench-json", "", "file to write the containers experiment's measurements to as JSON")
		list    = flag.Bool("list", false, "list available experiments and exit")
		verbose = flag.Bool("v", false, "verbose progress output")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun with -experiment <id> or -experiment all")
		}
		return
	}

	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Verbose: *verbose,
		Workers: *workers, Shards: *shards, BuildWorkers: *bwork,
		SaveIndexPath: *saveIdx, LoadIndexPath: *loadIdx,
		Density: *density, BenchJSONPath: *bjson,
	}

	if *expID == "all" {
		t0 := time.Now()
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "igqbench:", err)
			os.Exit(1)
		}
		fmt.Printf("all experiments completed in %v\n", time.Since(t0))
		return
	}

	e, ok := experiments.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "igqbench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(1)
	}
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	t0 := time.Now()
	if err := e.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "igqbench:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(t0))
}
