package igq

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/trie"
)

// lazyTestDB builds n random labeled graphs (deterministic from seed) big
// enough to spread postings across a 16-shard index.
func lazyTestDB(n int, seed int64) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	db := make([]*Graph, n)
	for i := range db {
		nv := 4 + rng.Intn(6)
		g := NewGraph(nv)
		for v := 0; v < nv; v++ {
			g.AddVertex(Label(rng.Intn(5)))
		}
		for v := 1; v < nv; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for e := 0; e < nv/2; e++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv))
		}
		db[i] = g
	}
	return db
}

func lazyTestQueries(db []*Graph, n int, seed int64) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*Graph, n)
	for i := range qs {
		qs[i] = ExtractQuery(db[rng.Intn(len(db))], 0, 2+rng.Intn(3))
	}
	return qs
}

// TestLoadEngineFileLazyDifferential: WithLazyLoad must be observationally
// invisible — identical answers under a tiny residency budget — while the
// residency statistics actually move, and MaterializeIndex must cut the
// engine loose from the snapshot file entirely.
func TestLoadEngineFileLazyDifferential(t *testing.T) {
	db := lazyTestDB(60, 1)
	qs := lazyTestQueries(db, 25, 2)
	opt := EngineOptions{Method: GGSX, MaxPathLen: 3, Shards: 16, DisableCache: true}
	built, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := SaveEngineFile(path, built); err != nil {
		t.Fatal(err)
	}

	eager, _, err := LoadEngineFile(path, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	lazy, _, err := LoadEngineFile(path, db, opt, WithLazyLoad(16<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()

	st := lazy.Stats()
	if !st.LazyLoaded || st.ResidentShards != 0 || st.TotalShards != 16 || st.LazyBudgetBytes != 16<<10 {
		t.Fatalf("post-open stats %+v: want lazy, 16 total shards, none resident", st)
	}
	ctx := context.Background()
	for i, q := range qs {
		er, err := eager.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := lazy.Query(ctx, q.Clone())
		if err != nil {
			t.Fatalf("query %d on lazy engine: %v", i, err)
		}
		if !reflect.DeepEqual(er.IDs, lr.IDs) {
			t.Fatalf("query %d: lazy answers %v, eager %v", i, lr.IDs, er.IDs)
		}
	}
	st = lazy.Stats()
	if st.ShardFaults == 0 {
		t.Error("queries answered without any shard fault-in")
	}
	if st.ResidentBytes > st.LazyBudgetBytes && st.ResidentShards > 1 {
		t.Errorf("resident %d bytes over budget %d", st.ResidentBytes, st.LazyBudgetBytes)
	}

	// Materialise, then delete the snapshot out from under the engine: it
	// must keep serving from memory.
	if err := lazy.MaterializeIndex(); err != nil {
		t.Fatal(err)
	}
	if st := lazy.Stats(); st.LazyLoaded {
		t.Errorf("still LazyLoaded after MaterializeIndex: %+v", st)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		er, _ := eager.Query(ctx, q)
		lr, err := lazy.Query(ctx, q.Clone())
		if err != nil || !reflect.DeepEqual(er.IDs, lr.IDs) {
			t.Fatalf("query %d diverges after materialise+unlink: err=%v", i, err)
		}
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestLazyEngineMutationMaterializes: AddGraphs on a lazily loaded engine
// must force the index resident first and produce the same post-mutation
// answers as the eager twin.
func TestLazyEngineMutationMaterializes(t *testing.T) {
	db := lazyTestDB(40, 7)
	extra := lazyTestDB(10, 8)
	opt := EngineOptions{Method: GGSX, MaxPathLen: 3, Shards: 8, DisableCache: true}
	built, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := SaveEngineFile(path, built); err != nil {
		t.Fatal(err)
	}
	eager, _, err := LoadEngineFile(path, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	lazy, _, err := LoadEngineFile(path, db, opt, WithLazyLoad(0))
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	ctx := context.Background()
	if err := eager.AddGraphs(ctx, extra); err != nil {
		t.Fatal(err)
	}
	if err := lazy.AddGraphs(ctx, extra); err != nil {
		t.Fatal(err)
	}
	if st := lazy.Stats(); st.LazyLoaded {
		t.Errorf("mutation left the engine lazy: %+v", st)
	}
	for i, q := range lazyTestQueries(append(append([]*Graph{}, db...), extra...), 20, 9) {
		er, err := eager.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := lazy.Query(ctx, q.Clone())
		if err != nil || !reflect.DeepEqual(er.IDs, lr.IDs) {
			t.Fatalf("post-mutation query %d diverges: err=%v", i, err)
		}
	}
}

// TestLazyEngineCorruptShardIsolation: with a corrupt segment body, the
// eager load refuses the file outright, while the lazy load binds and keeps
// every healthy shard serving — queries routed to the corrupt shard fail as
// contained *PanicError (wrapping trie.ErrCorrupt), and an explicit
// MaterializeIndex surfaces the damage as an error.
func TestLazyEngineCorruptShardIsolation(t *testing.T) {
	db := lazyTestDB(60, 21)
	qs := lazyTestQueries(db, 30, 22)
	opt := EngineOptions{Method: GGSX, MaxPathLen: 3, Shards: 16, DisableCache: true}
	built, err := NewEngine(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := SaveEngineFile(path, built); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// No cache section and no journal: the file ends with the last shard's
	// segment body plus the one-byte section terminator. Flipping the byte
	// before the terminator corrupts that shard (body or CRC — either is
	// caught at fault-in) without touching the eagerly-decoded metadata.
	raw[len(raw)-2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := LoadEngineFile(path, db, opt); err == nil {
		t.Fatal("eager load accepted a corrupt segment body")
	}
	lazy, _, err := LoadEngineFile(path, db, opt, WithLazyLoad(0))
	if err != nil {
		t.Fatalf("lazy load must defer body corruption to fault-in: %v", err)
	}
	defer lazy.Close()
	served, contained := 0, 0
	ctx := context.Background()
	for _, q := range qs {
		_, qerr := lazy.Query(ctx, q)
		switch {
		case qerr == nil:
			served++
		default:
			var pe *PanicError
			if !errors.As(qerr, &pe) {
				t.Fatalf("query against corrupt snapshot failed outside containment: %v", qerr)
			}
			contained++
		}
	}
	if served == 0 {
		t.Error("no query survived one corrupt shard: isolation failed")
	}
	if st := lazy.Stats(); int(st.Panics) != contained {
		t.Errorf("Stats.Panics = %d, contained failures = %d", st.Panics, contained)
	}
	if err := lazy.MaterializeIndex(); !errors.Is(err, trie.ErrCorrupt) {
		t.Fatalf("MaterializeIndex = %v, want trie.ErrCorrupt", err)
	}
}
